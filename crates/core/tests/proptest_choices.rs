//! Property tests for the choice-network export and choice-aware mapping.
//!
//! Two guarantees are pinned here:
//!
//! 1. **Member soundness**: every representative recorded in a `ChoiceAig`
//!    class is CEC-equivalent to the class root — on random circuits pushed
//!    through real saturation, not hand-picked examples.
//! 2. **Mapping monotonicity**: choice-aware mapping never produces worse
//!    area than the choice-free flow on the benchgen suite circuits (the
//!    flow maps the representative baseline in the same run and keeps the
//!    better netlist, so this must hold exactly).
//!
//! `PROPTEST_CASES` scales the random-circuit coverage.

// Helper fns here run outside #[test] context, so the clippy.toml
// test relaxation does not reach them.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use aig::{Aig, Lit};
use cec::{check_equivalence, CecOptions};
use choices::{egraph_to_choices, ChoiceAig, ChoiceConfig};
use egraph::{Runner, Scheduler};
use emorphic::flow::{emorphic_map_flow, MapFlowConfig};
use emorphic::{aig_to_egraph, all_rules};
use proptest::prelude::*;
use techmap::cell::try_map_to_cells_with_choices;
use techmap::library::asap7_like;
use techmap::MapOptions;

/// Copies `aig`'s logic into a fresh network whose single output is `lit`
/// (all primary inputs retained), so two internal literals can be compared
/// with the standard CEC entry points.
fn cone_view(aig: &Aig, lit: Lit) -> Aig {
    let mut out = Aig::new("view");
    let inputs: Vec<Lit> = aig
        .input_names()
        .iter()
        .map(|n| out.add_input(n.clone()))
        .collect();
    let map = aig.copy_logic_into(&mut out, &inputs);
    let root = map[lit.node().index()].xor(lit.is_complemented());
    out.add_output(root, "f");
    out
}

/// Saturates a circuit and exports it as a choice network.
fn saturate_and_export(aig: &Aig, max_choices: usize) -> ChoiceAig {
    let conversion = aig_to_egraph(aig);
    let runner = Runner::with_egraph(conversion.egraph)
        .with_iter_limit(2)
        .with_node_limit(8_000)
        .with_scheduler(Scheduler::Backoff {
            match_limit: 400,
            ban_length: 2,
        })
        .run(&all_rules());
    let roots: Vec<egraph::Id> = conversion
        .roots
        .iter()
        .map(|&r| runner.egraph.find(r))
        .collect();
    let (network, _stats) = egraph_to_choices(
        &runner.egraph,
        &roots,
        &conversion.input_names,
        &conversion.output_names,
        &conversion.name,
        &ChoiceConfig {
            max_choices,
            ..ChoiceConfig::default()
        },
    )
    .expect("export succeeds on realizable circuits");
    network
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Every representative in every exported class is CEC-equivalent to the
    /// class root, and the representative network is CEC-equivalent to the
    /// input circuit.
    #[test]
    fn exported_members_are_cec_equivalent(
        seed in 0u64..10_000,
        num_ands in 8usize..60,
        num_inputs in 3usize..7,
    ) {
        let circuit = benchgen::random_aig(num_inputs, num_ands, 2, seed);
        let network = saturate_and_export(&circuit, 4);
        let options = CecOptions::default();
        for class in network.classes() {
            let repr_view = cone_view(network.aig(), class.repr());
            for &member in class.alternatives() {
                let member_view = cone_view(network.aig(), member);
                let res = check_equivalence(&repr_view, &member_view, &options);
                prop_assert!(
                    res.is_equivalent(),
                    "member {member:?} differs from class root {:?}: {res:?}",
                    class.repr()
                );
            }
        }
        let repr = network.repr_network();
        let res = check_equivalence(&circuit, &repr, &options);
        prop_assert!(res.is_equivalent(), "representative network differs: {res:?}");
    }

    /// Timing-driven recovery over a choice network: after every
    /// area-recovery pass the mapped netlist stays equivalent to the input
    /// AIG (exhaustively checked over all input patterns) and its worst-case
    /// arrival never exceeds the pre-recovery (delay-optimal) critical path.
    #[test]
    fn area_recovery_preserves_function_and_critical_path(
        seed in 0u64..10_000,
        num_ands in 8usize..60,
        num_inputs in 3usize..7,
    ) {
        let circuit = benchgen::random_aig(num_inputs, num_ands, 2, seed);
        let network = saturate_and_export(&circuit, 4);
        let library = asap7_like();
        let source = network.aig();
        // Pre-recovery critical path: the delay-optimal pass, no recovery.
        let optimal = try_map_to_cells_with_choices(
            &network,
            &library,
            &MapOptions { area_passes: 0, ..MapOptions::default() },
        ).expect("mappable");
        let mut last_area = f64::INFINITY;
        for passes in 0..=3usize {
            let netlist = try_map_to_cells_with_choices(
                &network,
                &library,
                &MapOptions { area_passes: passes, ..MapOptions::default() },
            ).expect("mappable");
            // Worst-case arrival never exceeds the pre-recovery critical
            // path (no delay target: recovery may only shuffle area).
            prop_assert!(
                netlist.delay_ps() <= optimal.delay_ps() + 1e-9,
                "passes {passes}: delay {} vs pre-recovery {}",
                netlist.delay_ps(),
                optimal.delay_ps()
            );
            // More passes never increase area (keep-best recovery).
            prop_assert!(
                netlist.area_um2() <= last_area + 1e-9,
                "passes {passes}: area {} grew past {last_area}",
                netlist.area_um2()
            );
            last_area = netlist.area_um2();
            // The mapped netlist computes the source network's function on
            // every input pattern (the source is CEC-equivalent to the
            // input circuit by the member-soundness property above).
            for pattern in 0..(1usize << num_inputs) {
                let bits: Vec<bool> = (0..num_inputs).map(|i| pattern >> i & 1 == 1).collect();
                prop_assert_eq!(
                    netlist.evaluate(source, &bits),
                    circuit.evaluate(&bits),
                    "passes {} pattern {}", passes, pattern
                );
            }
        }
    }
}

/// Choice-aware mapping never produces worse area than the choice-free flow
/// on the benchgen suite circuits, and every mapped netlist verifies.
#[test]
fn choice_mapping_never_worse_on_benchgen_suite() {
    let circuits = vec![
        benchgen::adder(8).aig,
        benchgen::multiplier(4).aig,
        benchgen::square_root(8).aig,
        benchgen::arbiter(8).aig,
    ];
    let config = MapFlowConfig::fast();
    for circuit in &circuits {
        let with_choices = emorphic_map_flow(circuit, &config).unwrap();
        let without = emorphic_map_flow(circuit, &config.clone().with_choices(false)).unwrap();
        assert!(
            with_choices.qor.area_um2 <= without.qor.area_um2 + 1e-9,
            "{}: choices {} vs choice-free {}",
            circuit.name(),
            with_choices.qor.area_um2,
            without.qor.area_um2
        );
        assert!(
            with_choices.verified,
            "{} (choices) failed CEC",
            circuit.name()
        );
        assert!(
            without.verified,
            "{} (choice-free) failed CEC",
            circuit.name()
        );
    }
}
