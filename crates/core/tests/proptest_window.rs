//! Property tests for the windowed-saturation pipeline.
//!
//! Three guarantees are pinned here, on random circuits pushed through the
//! real partition → saturate → stitch/commit machinery:
//!
//! 1. **Differential soundness**: the windowed flow's final network is
//!    CEC-equivalent to the input — checked independently of the flow's own
//!    `verified` flag, with the monolithic flow run on the same circuit as
//!    the reference.
//! 2. **Pinned area bound**: windowed resynthesis never grows the host
//!    (each committed window is strictly net-negative by construction).
//! 3. **Thread determinism**: the windowed decomposition is bit-identical
//!    at 1 and 4 search threads — same stitched network, same statistics,
//!    same committed rebuild.
//!
//! `PROPTEST_CASES` scales the random-circuit coverage.

// Helper fns here run outside #[test] context, so the clippy.toml
// test relaxation does not reach them.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use cec::{check_equivalence, CecOptions};
use choices::ChoiceConfig;
use emorphic::flow::{emorphic_flow, FlowConfig};
use emorphic::{saturate_windows, windowed_resynthesis};
use proptest::prelude::*;
use window::WindowOptions;

/// A reduced flow configuration so each proptest case stays fast; windows
/// are kept small so even 30-gate circuits split into several.
fn test_config() -> (FlowConfig, WindowOptions) {
    let config = FlowConfig::fast();
    let opts = WindowOptions {
        max_leaves: 6,
        max_volume: 24,
        min_mffc: 1,
    };
    (config, opts)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// The windowed flow and the monolithic flow both produce networks
    /// CEC-equivalent to the input, and both runs report a completed proof.
    #[test]
    fn windowed_flow_matches_monolithic_function(
        seed in 0u64..10_000,
        num_ands in 10usize..80,
        num_inputs in 3usize..8,
    ) {
        let circuit = benchgen::random_aig(num_inputs, num_ands, 2, seed);
        let (config, opts) = test_config();
        let windowed = emorphic_flow(&circuit, &config.clone().with_partitioning(opts));
        let monolithic = emorphic_flow(&circuit, &config);
        prop_assert!(windowed.verified, "windowed flow CEC incomplete");
        prop_assert!(monolithic.verified, "monolithic flow CEC incomplete");
        // Independent proof, not trusting the flow's internal verifier.
        let res = check_equivalence(&circuit, &windowed.final_aig, &CecOptions::default());
        prop_assert!(res.is_equivalent(), "windowed network differs: {res:?}");
        let report = windowed.window.expect("windowed flow must report windows");
        prop_assert!(report.error.is_none(), "fell back: {:?}", report.error);
        // The conventional pre-passes can collapse tiny random circuits to
        // constants; the partitioner only owes windows when ANDs survive.
        prop_assert!(
            report.windows > 0 || windowed.final_aig.num_ands() == 0,
            "partitioner produced no windows on a non-trivial host"
        );
    }

    /// Windowed resynthesis never grows the host network: every committed
    /// window replacement is strictly smaller than the interior logic it
    /// retires, so the rebuilt AND count is bounded by the strashed input.
    #[test]
    fn windowed_resynthesis_never_grows_host(
        seed in 0u64..10_000,
        num_ands in 10usize..80,
        num_inputs in 3usize..8,
    ) {
        let circuit = benchgen::random_aig(num_inputs, num_ands, 2, seed);
        let (config, opts) = test_config();
        let host = circuit.strash_copy();
        let (rebuilt, _part, report) =
            windowed_resynthesis(&circuit, &opts, &config).expect("windowed resynthesis");
        prop_assert!(
            rebuilt.num_ands() <= host.num_ands(),
            "host grew: {} -> {} ({} windows committed)",
            host.num_ands(),
            rebuilt.num_ands(),
            report.windows_resynthesized
        );
        let res = check_equivalence(&circuit, &rebuilt, &CecOptions::default());
        prop_assert!(res.is_equivalent(), "rebuilt host differs: {res:?}");
    }

    /// The whole windowed decomposition — stitched choice network and
    /// committed rebuild — is bit-identical at 1 and 4 search threads.
    #[test]
    fn windowed_decomposition_is_thread_deterministic(
        seed in 0u64..10_000,
        num_ands in 10usize..60,
        num_inputs in 3usize..7,
    ) {
        let circuit = benchgen::random_aig(num_inputs, num_ands, 2, seed);
        let (config, opts) = test_config();
        let choices = ChoiceConfig::default();
        let serial = FlowConfig { search_threads: 1, ..config.clone() };
        let parallel = FlowConfig { search_threads: 4, ..config };

        let (s, _, s_report) =
            saturate_windows(&circuit, &opts, &serial, &choices).expect("serial stitch");
        let (p, _, p_report) =
            saturate_windows(&circuit, &opts, &parallel, &choices).expect("parallel stitch");
        prop_assert_eq!(s.stats, p.stats, "stitch statistics diverged");
        prop_assert_eq!(&s.table, &p.table, "boundary tables diverged");
        prop_assert_eq!(
            s.network.aig().num_nodes(),
            p.network.aig().num_nodes(),
            "stitched node counts diverged"
        );
        prop_assert_eq!(
            s.network.classes().len(),
            p.network.classes().len(),
            "class counts diverged"
        );
        prop_assert_eq!(s_report.windows, p_report.windows);
        prop_assert_eq!(s_report.classes_exported, p_report.classes_exported);
        prop_assert_eq!(s_report.alternatives, p_report.alternatives);

        let (a, _, _) =
            windowed_resynthesis(&circuit, &opts, &serial).expect("serial rebuild");
        let (b, _, _) =
            windowed_resynthesis(&circuit, &opts, &parallel).expect("parallel rebuild");
        prop_assert_eq!(a.num_nodes(), b.num_nodes(), "rebuilt node counts diverged");
        prop_assert_eq!(a.outputs(), b.outputs(), "rebuilt output literals diverged");
    }
}
