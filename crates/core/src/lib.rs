//! E-morphic: scalable equality saturation for structural exploration in
//! logic synthesis.
//!
//! This crate implements the paper's primary contribution on top of the
//! workspace substrates (`aig`, `egraph`, `logic-opt`, `techmap`, `cec`,
//! `costmodel`):
//!
//! * [`lang`] — the Boolean term language used inside the e-graph and the
//!   Table-I rewrite-rule set ([`rules`]).
//! * [`convert`] — **direct DAG-to-DAG conversion** between AIGs and e-graphs
//!   (Section III-D1), with the S-expression-based E-Syn baseline in
//!   [`esyn`] for the Table III comparison.
//! * [`dsl`] — the intermediate JSON DSL of Fig. 7.
//! * [`extract`] — the [`ExtractionEngine`] API over bottom-up extraction
//!   with **solution-space pruning** (Fig. 6), DAG-cost and slack-aware
//!   refinement, and the **simulated-annealing extractor** of Algorithm 1 /
//!   Fig. 4, raced in parallel by [`PortfolioEngine`].
//! * [`flow`] — the end-to-end synthesis flows: the delay-oriented baseline
//!   `(st; if -g -K 6 -C 8)(st; dch; map)×4` and the E-morphic flow that
//!   inserts e-graph resynthesis before the final mapping round, with the
//!   runtime breakdown instrumentation used for Fig. 9.
//!
//! # Quickstart
//!
//! ```
//! use emorphic::flow::{emorphic_flow, FlowConfig};
//!
//! // A small adder stands in for an EPFL circuit.
//! let circuit = benchgen::adder(8).aig;
//! let config = FlowConfig::fast();
//! let result = emorphic_flow(&circuit, &config);
//! assert!(result.verified);
//! assert!(result.qor.delay_ps > 0.0);
//! ```

#![warn(missing_docs)]

pub mod checkpoint;
pub mod convert;
pub mod dsl;
pub mod esyn;
pub mod extract;
pub mod flow;
pub mod lang;
pub mod report;
pub mod rules;
pub mod windowed;

pub use audit::{AuditLevel, AuditReport};
pub use checkpoint::FlowCheckpoint;
pub use convert::{aig_to_egraph, selection_to_aig, try_selection_to_aig, ConversionResult};
pub use extract::sa::{SaEngine, SaExtractor, SaOptions, SaResult};
pub use extract::{
    bottom_up_extract, BottomUpEngine, EngineReport, ExtractBudget, ExtractError, ExtractStats,
    Extraction, ExtractionCost, ExtractionEngine, ExtractorKind, GlobalGreedyDagEngine,
    PortfolioEngine, PortfolioScorer, Selection, SlackAwareEngine,
};
pub use flow::{
    baseline_flow, emorphic_flow, emorphic_map_flow, extract_network, map_network, prepare_network,
    saturate_network, saturate_network_with_interrupt, FlowConfig, FlowResult, MapFlowConfig,
    MapFlowError, MapFlowResult, SaturatedState,
};
pub use lang::BoolLang;
pub use rules::{all_rules, rule_set_id, table1_rules};
pub use windowed::{saturate_windows, windowed_resynthesis, WindowReport};
