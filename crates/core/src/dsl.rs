//! The intermediate DSL of Fig. 7: a JSON serialization of the initial
//! e-graph in which every circuit signal is referred to by a unique id.
//!
//! The format stores one entry per e-class with its e-nodes (operator plus
//! child class ids) and its parent classes, exactly the information needed to
//! rebuild either the e-graph or the circuit without parsing S-expressions.

use crate::convert::ConversionResult;
use crate::lang::BoolLang;
use egraph::serialize::{from_serialized, to_serialized, SerializedEGraph};
use egraph::{EGraph, Id, ParseError};
use serde::{Deserialize, Serialize};

/// The top-level DSL document: the serialized e-graph plus the circuit
/// interface needed to reconstruct a netlist.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DslDocument {
    /// Design name.
    pub name: String,
    /// Primary-input names (`x<i>` in the e-graph corresponds to entry `i`).
    pub inputs: Vec<String>,
    /// Primary-output names, aligned with `SerializedEGraph::roots`.
    pub outputs: Vec<String>,
    /// The e-graph body (`"egraph"` object of Fig. 7).
    pub egraph: SerializedEGraph,
}

impl DslDocument {
    /// Builds a DSL document from a forward conversion result.
    pub fn from_conversion(conversion: &ConversionResult) -> Self {
        DslDocument {
            name: conversion.name.clone(),
            inputs: conversion.input_names.clone(),
            outputs: conversion.output_names.clone(),
            egraph: to_serialized(&conversion.egraph, &conversion.roots),
        }
    }

    /// Serializes the document to JSON text.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self)
            .unwrap_or_else(|_| unreachable!("DSL serialization cannot fail"))
    }

    /// Parses a document from JSON text.
    ///
    /// # Errors
    /// Returns a [`ParseError`] describing the malformed JSON.
    pub fn from_json(text: &str) -> Result<Self, ParseError> {
        serde_json::from_str(text).map_err(|e| ParseError(e.to_string()))
    }

    /// Reconstructs the e-graph and root classes described by the document.
    ///
    /// # Errors
    /// Returns a [`ParseError`] if the document references unknown operators
    /// or undefined classes.
    pub fn to_egraph(&self) -> Result<(EGraph<BoolLang>, Vec<Id>), ParseError> {
        let (egraph, _map, roots) = from_serialized::<BoolLang>(&self.egraph)?;
        Ok((egraph, roots))
    }

    /// Number of e-nodes stored in the document.
    pub fn num_enodes(&self) -> usize {
        self.egraph.num_nodes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::{aig_to_egraph, selection_to_aig};
    use egraph::{AstSize, Extractor};

    #[test]
    fn document_roundtrips_through_json() {
        let aig = benchgen::adder(4).aig;
        let conv = aig_to_egraph(&aig);
        let doc = DslDocument::from_conversion(&conv);
        let json = doc.to_json();
        assert!(json.contains("\"egraph\""));
        assert!(json.contains("\"parents\""));
        let back = DslDocument::from_json(&json).unwrap();
        assert_eq!(doc, back);
        assert!(DslDocument::from_json("{").is_err());
    }

    #[test]
    fn reconstructed_egraph_preserves_circuit_function() {
        let aig = benchgen::adder(3).aig;
        let conv = aig_to_egraph(&aig);
        let doc = DslDocument::from_conversion(&conv);
        let (egraph, roots) = doc.to_egraph().unwrap();
        assert_eq!(egraph.num_classes(), conv.egraph.num_classes());
        let extractor = Extractor::new(&egraph, AstSize);
        let back = selection_to_aig(
            &egraph,
            &extractor.selection(),
            &roots,
            &doc.inputs,
            &doc.outputs,
            &doc.name,
        );
        for p in 0..(1usize << aig.num_inputs()) {
            let bits: Vec<bool> = (0..aig.num_inputs()).map(|i| p >> i & 1 == 1).collect();
            assert_eq!(aig.evaluate(&bits), back.evaluate(&bits), "pattern {p}");
        }
    }

    #[test]
    fn enode_counts_match_paper_style_reporting() {
        let aig = benchgen::multiplier(4).aig;
        let conv = aig_to_egraph(&aig);
        let doc = DslDocument::from_conversion(&conv);
        assert_eq!(doc.num_enodes(), conv.egraph.total_nodes());
        assert!(doc.num_enodes() >= aig.num_ands());
    }
}
