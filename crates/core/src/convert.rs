//! Direct DAG-to-DAG conversion between AIGs and e-graphs (Section III-D1).
//!
//! Prior work (E-Syn) flattened the circuit into an S-expression before
//! handing it to the e-graph library, duplicating every shared node. Here the
//! circuit DAG is traversed once and every AIG node becomes exactly one
//! e-node (plus one `Not` e-node per complemented edge polarity actually
//! used), so conversion time and memory are linear in the circuit size in
//! both directions.

use crate::lang::BoolLang;
use aig::{Aig, AigNode, Lit, NodeId};
use egraph::{DagSelection, EGraph, FxHashMap, Id, RecExpr, SelectionError};
use std::time::{Duration, Instant};

/// The result of converting a circuit into an e-graph.
#[derive(Debug, Clone)]
pub struct ConversionResult {
    /// The initial e-graph (one class per distinct circuit signal).
    pub egraph: EGraph<BoolLang>,
    /// Root class of every primary output, in output order.
    pub roots: Vec<Id>,
    /// Design name carried over from the AIG.
    pub name: String,
    /// Primary-input names (index `i` corresponds to `BoolLang::Var(i)`).
    pub input_names: Vec<String>,
    /// Primary-output names.
    pub output_names: Vec<String>,
    /// Wall-clock time of the forward conversion.
    pub forward_time: Duration,
}

/// Converts an AIG into an initial e-graph, one e-node per circuit node.
pub fn aig_to_egraph(aig: &Aig) -> ConversionResult {
    let start = Instant::now();
    let mut egraph: EGraph<BoolLang> = EGraph::new();
    // Positive-phase class of every AIG node.
    let mut pos: Vec<Option<Id>> = vec![None; aig.num_nodes()];
    // Lazily created negative-phase (Not) class of every AIG node.
    let mut neg: Vec<Option<Id>> = vec![None; aig.num_nodes()];

    pos[NodeId::CONST.index()] = Some(egraph.add(BoolLang::Const(false)));

    let lit_to_id = |lit: Lit,
                     egraph: &mut EGraph<BoolLang>,
                     pos: &mut Vec<Option<Id>>,
                     neg: &mut Vec<Option<Id>>|
     -> Id {
        let base =
            pos[lit.node().index()].unwrap_or_else(|| unreachable!("fanin visited before fanout"));
        if !lit.is_complemented() {
            return base;
        }
        if let Some(existing) = neg[lit.node().index()] {
            return existing;
        }
        let id = egraph.add(BoolLang::Not(base));
        neg[lit.node().index()] = Some(id);
        id
    };

    for id in aig.node_ids() {
        match aig.node(id) {
            AigNode::Const => {}
            AigNode::Input { index } => {
                pos[id.index()] = Some(egraph.add(BoolLang::Var(*index)));
            }
            AigNode::And { fanin0, fanin1 } => {
                let a = lit_to_id(*fanin0, &mut egraph, &mut pos, &mut neg);
                let b = lit_to_id(*fanin1, &mut egraph, &mut pos, &mut neg);
                pos[id.index()] = Some(egraph.add(BoolLang::And([a, b])));
            }
        }
    }

    let roots: Vec<Id> = aig
        .outputs()
        .iter()
        .map(|&po| lit_to_id(po, &mut egraph, &mut pos, &mut neg))
        .collect();
    egraph.rebuild();
    let roots = roots.into_iter().map(|r| egraph.find(r)).collect();

    ConversionResult {
        egraph,
        roots,
        name: aig.name().to_string(),
        input_names: aig.input_names().to_vec(),
        output_names: aig.output_names().to_vec(),
        forward_time: start.elapsed(),
    }
}

/// Converts a per-class e-node selection back into an AIG (the backward
/// direction of the DAG-to-DAG conversion).
///
/// `input_names` supplies the primary-input list; `Var(i)` maps to input `i`.
/// Classes reachable from the roots must all have a selection.
///
/// # Panics
/// Panics if a reachable class has no selected node or the selection is
/// cyclic; [`try_selection_to_aig`] reports the same conditions as a typed
/// [`SelectionError`] instead.
pub fn selection_to_aig(
    egraph: &EGraph<BoolLang>,
    selection: &DagSelection<BoolLang>,
    roots: &[Id],
    input_names: &[String],
    output_names: &[String],
    name: &str,
) -> Aig {
    #[allow(clippy::panic)] // the panic is the documented contract of this wrapper
    try_selection_to_aig(egraph, selection, roots, input_names, output_names, name)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Converts a per-class e-node selection back into an AIG, reporting missing
/// or cyclic selections as a typed error instead of panicking.
///
/// # Errors
/// Returns a [`SelectionError`] if a class reachable from the roots has no
/// selected node or the selection is cyclic.
///
/// # Panics
/// Panics if `roots` and `output_names` differ in length.
pub fn try_selection_to_aig(
    egraph: &EGraph<BoolLang>,
    selection: &DagSelection<BoolLang>,
    roots: &[Id],
    input_names: &[String],
    output_names: &[String],
    name: &str,
) -> Result<Aig, SelectionError> {
    assert_eq!(roots.len(), output_names.len(), "one name per output root");
    let mut aig = Aig::new(name.to_string());
    let inputs: Vec<Lit> = input_names
        .iter()
        .map(|n| aig.add_input(n.clone()))
        .collect();
    let mut cache: FxHashMap<Id, Lit> = FxHashMap::default();

    fn build(
        egraph: &EGraph<BoolLang>,
        selection: &DagSelection<BoolLang>,
        id: Id,
        aig: &mut Aig,
        inputs: &[Lit],
        cache: &mut FxHashMap<Id, Lit>,
        depth: usize,
    ) -> Result<Lit, SelectionError> {
        let id = egraph.find(id);
        if let Some(&lit) = cache.get(&id) {
            return Ok(lit);
        }
        if depth > egraph.num_classes() + 1 {
            return Err(SelectionError::Cyclic(id));
        }
        let node = selection
            .node(id)
            .ok_or(SelectionError::Missing(id))?
            .clone();
        let lit = match node {
            BoolLang::Const(b) => {
                if b {
                    Lit::TRUE
                } else {
                    Lit::FALSE
                }
            }
            BoolLang::Var(i) => inputs[i as usize],
            BoolLang::Not(c) => build(egraph, selection, c, aig, inputs, cache, depth + 1)?.not(),
            BoolLang::And([a, b]) => {
                let la = build(egraph, selection, a, aig, inputs, cache, depth + 1)?;
                let lb = build(egraph, selection, b, aig, inputs, cache, depth + 1)?;
                aig.and(la, lb)
            }
            BoolLang::Or([a, b]) => {
                let la = build(egraph, selection, a, aig, inputs, cache, depth + 1)?;
                let lb = build(egraph, selection, b, aig, inputs, cache, depth + 1)?;
                aig.or(la, lb)
            }
        };
        cache.insert(id, lit);
        Ok(lit)
    }

    for (root, name) in roots.iter().zip(output_names) {
        let lit = build(egraph, selection, *root, &mut aig, &inputs, &mut cache, 0)?;
        aig.add_output(lit, name.clone());
    }
    Ok(aig.cleanup())
}

/// Converts a tree-shaped term back into an AIG (used by the E-Syn baseline's
/// backward path and by tests on extracted [`RecExpr`]s).
pub fn recexpr_to_aig(
    expr: &RecExpr<BoolLang>,
    input_names: &[String],
    output_name: &str,
    name: &str,
) -> Aig {
    let mut aig = Aig::new(name.to_string());
    let inputs: Vec<Lit> = input_names
        .iter()
        .map(|n| aig.add_input(n.clone()))
        .collect();
    let mut lits: Vec<Lit> = Vec::with_capacity(expr.len());
    for node in expr.as_ref() {
        let lit = match node {
            BoolLang::Const(b) => {
                if *b {
                    Lit::TRUE
                } else {
                    Lit::FALSE
                }
            }
            BoolLang::Var(i) => inputs[*i as usize],
            BoolLang::Not(c) => lits[c.index()].not(),
            BoolLang::And([a, b]) => aig.and(lits[a.index()], lits[b.index()]),
            BoolLang::Or([a, b]) => aig.or(lits[a.index()], lits[b.index()]),
        };
        lits.push(lit);
    }
    let root = *lits
        .last()
        .unwrap_or_else(|| unreachable!("non-empty expression"));
    aig.add_output(root, output_name);
    aig.cleanup()
}

#[cfg(test)]
mod tests {
    use super::*;
    use egraph::{AstSize, Extractor};

    fn sample() -> Aig {
        let mut aig = Aig::new("sample");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let ab = aig.and(a, b);
        let f = aig.or(ab, c);
        let g = aig.xor(a, c);
        aig.add_output(f, "f");
        aig.add_output(g.not(), "ng");
        aig
    }

    fn check_equiv_exhaustive(a: &Aig, b: &Aig) {
        assert_eq!(a.num_inputs(), b.num_inputs());
        for p in 0..(1usize << a.num_inputs()) {
            let bits: Vec<bool> = (0..a.num_inputs()).map(|i| p >> i & 1 == 1).collect();
            assert_eq!(a.evaluate(&bits), b.evaluate(&bits), "pattern {p}");
        }
    }

    #[test]
    fn forward_conversion_is_linear_in_circuit_size() {
        let aig = sample();
        let conv = aig_to_egraph(&aig);
        // One class per distinct signal plus Not wrappers: strictly fewer than
        // 2x the node count.
        assert!(conv.egraph.num_classes() <= 2 * aig.num_nodes());
        assert!(conv.egraph.num_classes() >= aig.num_nodes() - 1);
        assert_eq!(conv.roots.len(), 2);
        assert_eq!(conv.input_names.len(), 3);
    }

    #[test]
    fn roundtrip_preserves_function() {
        let aig = sample();
        let conv = aig_to_egraph(&aig);
        let extractor = Extractor::new(&conv.egraph, AstSize);
        let selection = extractor.selection();
        let back = selection_to_aig(
            &conv.egraph,
            &selection,
            &conv.roots,
            &conv.input_names,
            &conv.output_names,
            &conv.name,
        );
        check_equiv_exhaustive(&aig, &back);
        assert_eq!(back.output_names(), aig.output_names());
    }

    #[test]
    fn roundtrip_on_larger_benchmark_circuits() {
        for circuit in [benchgen::adder(6), benchgen::multiplier(4)] {
            let aig = circuit.aig;
            let conv = aig_to_egraph(&aig);
            let extractor = Extractor::new(&conv.egraph, AstSize);
            let back = selection_to_aig(
                &conv.egraph,
                &extractor.selection(),
                &conv.roots,
                &conv.input_names,
                &conv.output_names,
                &conv.name,
            );
            check_equiv_exhaustive(&aig, &back);
        }
    }

    #[test]
    fn shared_nodes_are_not_duplicated() {
        // (a&b) feeding two outputs must create a single And e-node.
        let mut aig = Aig::new("shared");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let ab = aig.and(a, b);
        let f = aig.and(ab, c);
        let g = aig.or(ab, c);
        aig.add_output(f, "f");
        aig.add_output(g, "g");
        let conv = aig_to_egraph(&aig);
        let and_nodes: usize = conv
            .egraph
            .classes()
            .flat_map(|c| c.nodes.iter())
            .filter(|n| matches!(n, BoolLang::And(_)))
            .count();
        // ab, f, and the AND inside g's OR: exactly 3.
        assert_eq!(and_nodes, 3);
    }

    #[test]
    fn constant_outputs_convert() {
        let mut aig = Aig::new("consts");
        let _x = aig.add_input("x");
        aig.add_output(Lit::TRUE, "one");
        aig.add_output(Lit::FALSE, "zero");
        let conv = aig_to_egraph(&aig);
        let extractor = Extractor::new(&conv.egraph, AstSize);
        let back = selection_to_aig(
            &conv.egraph,
            &extractor.selection(),
            &conv.roots,
            &conv.input_names,
            &conv.output_names,
            &conv.name,
        );
        assert_eq!(back.evaluate(&[true]), vec![true, false]);
        assert_eq!(back.evaluate(&[false]), vec![true, false]);
    }

    #[test]
    fn missing_selection_is_a_typed_error() {
        let aig = sample();
        let conv = aig_to_egraph(&aig);
        // An empty selection cannot realize any root.
        let empty = DagSelection {
            choices: FxHashMap::default(),
        };
        let err = try_selection_to_aig(
            &conv.egraph,
            &empty,
            &conv.roots,
            &conv.input_names,
            &conv.output_names,
            "broken",
        )
        .unwrap_err();
        assert!(matches!(err, SelectionError::Missing(_)));
    }

    #[test]
    fn recexpr_conversion_matches_eval() {
        let expr: RecExpr<BoolLang> = "(| (& x0 x1) (! x2))".parse().unwrap();
        let names = vec!["a".to_string(), "b".to_string(), "c".to_string()];
        let aig = recexpr_to_aig(&expr, &names, "f", "expr");
        for p in 0..8usize {
            let bits = [(p & 1) != 0, (p & 2) != 0, (p & 4) != 0];
            let expected = (bits[0] && bits[1]) || !bits[2];
            assert_eq!(aig.evaluate(&bits), vec![expected]);
        }
    }
}
