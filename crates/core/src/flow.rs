//! End-to-end synthesis flows (paper Section IV).
//!
//! * [`baseline_flow`] — the delay-oriented reference flow
//!   `(st; if -g -K 6 -C 8)(st; dch; map) × 4` built from the workspace
//!   substrates: SOP balancing, structural choices via SAT sweeping, and
//!   standard-cell mapping against the built-in 7-nm-style library.
//! * [`emorphic_flow`] — the same flow with e-graph-based resynthesis
//!   inserted before the final mapping round: DAG-to-DAG conversion, a small
//!   number of Table-I rewriting iterations, and parallel simulated-annealing
//!   extraction guided by either the technology mapper (quality mode) or the
//!   learned cost model (runtime mode). The result is verified against the
//!   input with SAT-based CEC, mirroring the paper's use of `cec`.
//!
//! Both flows record a wall-clock breakdown (conventional optimization,
//! e-graph conversion, SA extraction) used to regenerate Fig. 9.

use crate::convert::aig_to_egraph;
use crate::extract::engine::report_for;
use crate::extract::sa::{SaEngine, SaOptions};
use crate::extract::{
    BottomUpEngine, EngineReport, ExtractBudget, ExtractError, Extraction, ExtractionCost,
    ExtractionEngine, ExtractorKind, GlobalGreedyDagEngine, PortfolioEngine, PortfolioScorer,
    SlackAwareEngine,
};
use crate::lang::BoolLang;
use crate::rules::all_rules;
use crate::windowed::{saturate_windows, windowed_resynthesis, WindowReport};
use aig::Aig;
use audit::{
    audit_aig_dag_only, audit_choices, audit_egraph, audit_netlist, audit_partition,
    audit_stitched, AuditLevel, AuditReport,
};
use cec::{check_equivalence, CecOptions};
use choices::{
    egraph_to_choices_with_selection, BoolNode, ChoiceConfig, ChoiceCost, ChoiceError,
    ClassSelection, ExportStats,
};
use costmodel::{CostEvaluator, LearnedCost, TechMapCost};
use egraph::{EGraph, Id, Runner, Scheduler};
use logic_opt::{dch_like, DchOptions};
use std::sync::Arc;
use std::time::{Duration, Instant};
use techmap::cell::{map_to_cells, try_map_to_cells, try_map_to_cells_with_choices, Netlist};
use techmap::library::{asap7_like, CellLibrary};
use techmap::{sop::sop_balance, MapError, MapOptions, Qor};
use window::{WindowError, WindowOptions};

/// Which cost model guides the SA extraction (paper Section III-C).
#[derive(Debug, Clone)]
pub enum CostMode {
    /// Quality-prioritized: evaluate candidates with the real mapper.
    Quality,
    /// Runtime-prioritized: evaluate candidates with a learned delay model.
    Runtime(LearnedCost),
}

/// Configuration of the synthesis flows.
#[derive(Debug, Clone)]
pub struct FlowConfig {
    /// Number of `(st; if -g)(st; dch; map)` rounds (4 in the paper).
    pub rounds: usize,
    /// LUT-mapping options used by SOP balancing (`if -g -K 6 -C 8`).
    pub lut_options: MapOptions,
    /// Standard-cell mapping options.
    pub map_options: MapOptions,
    /// Structural-choice (dch) options.
    pub dch_options: DchOptions,
    /// The standard-cell library.
    pub library: CellLibrary,
    /// Number of e-graph rewriting iterations (5 in the paper).
    pub rewrite_iterations: usize,
    /// E-node limit for the rewriting phase.
    pub node_limit: usize,
    /// Per-rule match limit per iteration (back-off scheduling). The budget
    /// is split across each rule's candidate-class shards, so with parallel
    /// search every thread count sees the same per-shard budgets.
    pub match_limit: usize,
    /// Worker threads for the saturation search phase (1 = serial). Results
    /// are bit-identical for every value — only wall-clock time changes —
    /// unless the runner's wall-clock limit fires mid-search (which shards a
    /// deadline cuts off is inherently timing-dependent).
    pub search_threads: usize,
    /// Simulated-annealing extraction options.
    pub sa: SaOptions,
    /// Which extraction engine pulls the resynthesized design out of the
    /// saturated e-graph (see [`ExtractorKind`]).
    pub extractor: ExtractorKind,
    /// Work budget handed to the extraction engine.
    pub extract_budget: ExtractBudget,
    /// Cost model used during extraction.
    pub cost_mode: CostMode,
    /// Verify the resynthesized circuit against the input with CEC.
    pub verify: bool,
    /// CEC options used for verification. The conflict budget must stay
    /// bounded: suite circuits include multipliers, whose miters plain CDCL
    /// cannot close, and an unlimited budget wedges the whole flow.
    pub cec: CecOptions,
    /// Sweep options used by the fraig-style CEC gate (and anywhere the flow
    /// SAT-sweeps). Budgeted in lockstep with [`FlowConfig::cec`] so one knob
    /// bounds every SAT call on the flow's critical path.
    pub sweep: cec::SweepOptions,
    /// How much invariant auditing the flow performs at phase boundaries
    /// (saturate, extract, choice-export, map): [`AuditLevel::Off`] costs
    /// nothing, `PhaseBoundaries` runs the cheap structural checkers, and
    /// `Paranoid` adds the exhaustive-simulation ones. Findings surface in
    /// the flow result's `audit` report instead of aborting the flow.
    pub audit_level: AuditLevel,
    /// Wall-clock limit for the saturation phase (`None` keeps the runner's
    /// default). The job server maps per-job budgets onto this knob; like
    /// any wall-clock limit, a run that actually hits it stops at a
    /// timing-dependent point.
    pub saturation_time_limit: Option<Duration>,
    /// When set, the resynthesis phase runs windowed instead of monolithic:
    /// the design is carved into reconvergence-bounded windows, each window
    /// is saturated as an independent e-graph on the worker pool, and the
    /// results are recombined ([`crate::windowed`]). `None` keeps the
    /// single-e-graph path.
    pub partitioning: Option<WindowOptions>,
}

impl FlowConfig {
    /// The paper's experimental configuration (Section IV-A), with the SA
    /// extractor in quality-prioritized mode.
    pub fn paper() -> Self {
        FlowConfig {
            rounds: 4,
            lut_options: MapOptions::lut6(),
            map_options: MapOptions::default(),
            dch_options: DchOptions::default(),
            library: asap7_like(),
            rewrite_iterations: 5,
            node_limit: 200_000,
            match_limit: 2_000,
            search_threads: 4,
            sa: SaOptions {
                iterations: 4,
                threads: 4,
                ..SaOptions::default()
            },
            extractor: ExtractorKind::Sa,
            extract_budget: ExtractBudget::unlimited(),
            cost_mode: CostMode::Quality,
            verify: true,
            cec: CecOptions {
                conflict_budget: Some(100_000),
                ..CecOptions::default()
            },
            sweep: cec::SweepOptions {
                conflict_budget: Some(100_000),
                ..cec::SweepOptions::default()
            },
            audit_level: AuditLevel::Off,
            saturation_time_limit: None,
            partitioning: None,
        }
    }

    /// A reduced configuration for tests, examples and CI.
    pub fn fast() -> Self {
        FlowConfig {
            rounds: 2,
            rewrite_iterations: 3,
            node_limit: 20_000,
            match_limit: 500,
            search_threads: 2,
            sa: SaOptions::fast(),
            cec: CecOptions {
                conflict_budget: Some(10_000),
                ..CecOptions::default()
            },
            sweep: cec::SweepOptions {
                conflict_budget: Some(10_000),
                ..cec::SweepOptions::default()
            },
            ..FlowConfig::paper()
        }
    }

    /// Switches the flow to the runtime-prioritized (learned) cost model with
    /// the paper's 6 parallel threads.
    #[must_use]
    pub fn with_learned_model(mut self, model: LearnedCost) -> Self {
        self.cost_mode = CostMode::Runtime(model);
        self.sa.threads = 6;
        self
    }

    /// Selects the extraction engine.
    #[must_use]
    pub fn with_extractor(mut self, extractor: ExtractorKind) -> Self {
        self.extractor = extractor;
        self
    }

    /// Sets the extraction work budget.
    #[must_use]
    pub fn with_extract_budget(mut self, budget: ExtractBudget) -> Self {
        self.extract_budget = budget;
        self
    }

    /// Sets the phase-boundary audit level.
    #[must_use]
    pub fn with_audit_level(mut self, level: AuditLevel) -> Self {
        self.audit_level = level;
        self
    }

    /// Enables windowed saturation with the given partitioning knobs.
    #[must_use]
    pub fn with_partitioning(mut self, opts: WindowOptions) -> Self {
        self.partitioning = Some(opts);
        self
    }

    /// Caps the saturation phase's wall-clock time (per-job budgets).
    #[must_use]
    pub fn with_saturation_time_limit(mut self, limit: Duration) -> Self {
        self.saturation_time_limit = Some(limit);
        self
    }
}

/// Runs the configured extraction engine and returns its result plus one
/// report per engine involved (one row for a single engine, one per member
/// for a portfolio).
#[allow(clippy::too_many_arguments)]
fn run_extraction(
    kind: ExtractorKind,
    sa_options: &SaOptions,
    evaluator: Arc<dyn CostEvaluator>,
    library: &CellLibrary,
    structural_cost: ExtractionCost,
    delay_first: bool,
    egraph: &EGraph<BoolLang>,
    roots: &[Id],
    budget: &ExtractBudget,
) -> (Result<Extraction, ExtractError>, Vec<EngineReport>) {
    match kind {
        ExtractorKind::Portfolio => {
            let portfolio = PortfolioEngine::new(vec![
                Box::new(BottomUpEngine::new(structural_cost)),
                Box::new(GlobalGreedyDagEngine::new()),
                Box::new(SlackAwareEngine::new()),
                Box::new(SaEngine::new(sa_options.clone(), evaluator)),
            ])
            .with_scorer(PortfolioScorer::Mapped {
                library: library.clone(),
                delay_first,
            });
            match portfolio.extract_with_reports(egraph, roots, budget) {
                Ok((extraction, reports)) => (Ok(extraction), reports),
                Err(e) => (Err(e), Vec::new()),
            }
        }
        _ => {
            let engine: Box<dyn ExtractionEngine> = match kind {
                ExtractorKind::Sa => Box::new(SaEngine::new(sa_options.clone(), evaluator)),
                ExtractorKind::BottomUp => Box::new(BottomUpEngine::new(structural_cost)),
                ExtractorKind::GlobalGreedyDag => Box::new(GlobalGreedyDagEngine::new()),
                ExtractorKind::SlackAware => Box::new(SlackAwareEngine::new()),
                ExtractorKind::Portfolio => unreachable!("handled above"),
            };
            let result = engine.extract(egraph, roots, budget);
            let won = result.is_ok();
            let report = report_for(egraph, roots, engine.name(), &result, won);
            (result, vec![report])
        }
    }
}

/// Translates an engine extraction into the choice exporter's per-class
/// selection (the engine's chosen e-node per class, children canonicalized,
/// plus its cost map for ranking alternatives).
fn extraction_to_class_selection(
    egraph: &EGraph<BoolLang>,
    extraction: &Extraction,
) -> ClassSelection {
    let mut best = egraph::FxHashMap::default();
    for (&id, node) in &extraction.selection.choices {
        if let Some(expr) = node.as_bool() {
            best.insert(id, expr.map_children(|c| egraph.find(c)));
        }
    }
    ClassSelection {
        best,
        costs: extraction.class_costs.clone(),
    }
}

/// The technology-independent prefix of the E-morphic flow: conventional
/// rounds 1..N-1 followed by the final round's `st; if -g` (SOP balancing).
/// The result is the network the resynthesis phase saturates.
pub fn prepare_network(aig: &Aig, config: &FlowConfig) -> Aig {
    let mut current = aig.clone();
    for _ in 0..config.rounds.saturating_sub(1) {
        let (next, _) = conventional_round(&current, config, true);
        current = next;
    }
    sop_balance(&current.strash_copy(), &config.lut_options)
}

/// A saturated e-graph plus the circuit interface needed to extract a
/// netlist from it — the product of [`saturate_network`], consumed by
/// [`extract_network`], and the unit of the server's checkpoint/restore
/// cycle (one saturation, many extractions).
#[derive(Debug, Clone)]
pub struct SaturatedState {
    /// The saturated (rebuilt) e-graph.
    pub egraph: EGraph<BoolLang>,
    /// Canonical root classes, aligned with `output_names`.
    pub roots: Vec<Id>,
    /// Design name.
    pub name: String,
    /// Primary-input names (`x<i>` corresponds to entry `i`).
    pub input_names: Vec<String>,
    /// Primary-output names, aligned with `roots`.
    pub output_names: Vec<String>,
    /// Per-iteration saturation reports (empty for a restored checkpoint).
    pub saturation: Vec<egraph::IterationReport>,
    /// Why saturation stopped (`None` for a restored checkpoint).
    pub stop_reason: Option<egraph::StopReason>,
    /// Wall-clock time of the forward AIG → e-graph conversion.
    pub conversion_time: Duration,
    /// Wall-clock time of the saturation itself.
    pub saturation_time: Duration,
}

/// Converts `current` to an e-graph and saturates it with the Table-I rule
/// set under the config's limits. The pure saturation phase of
/// [`emorphic_flow`], exposed so a job server can snapshot the result and
/// re-extract it under different knobs without re-saturating.
pub fn saturate_network(current: &Aig, config: &FlowConfig) -> SaturatedState {
    saturate_network_with_interrupt(current, config, None)
}

/// [`saturate_network`] with an optional cooperative interrupt flag wired
/// into the runner ([`egraph::Runner::with_interrupt`]): setting the flag
/// preempts the saturation at the next limit checkpoint, leaving the
/// e-graph rebuilt and consistent with
/// [`egraph::StopReason::Interrupted`] as the stop reason.
pub fn saturate_network_with_interrupt(
    current: &Aig,
    config: &FlowConfig,
    interrupt: Option<Arc<std::sync::atomic::AtomicBool>>,
) -> SaturatedState {
    let t_convert = Instant::now();
    let conversion = aig_to_egraph(current);
    let conversion_time = t_convert.elapsed();

    let t_saturate = Instant::now();
    let mut runner = Runner::with_egraph(conversion.egraph)
        .with_iter_limit(config.rewrite_iterations)
        .with_node_limit(config.node_limit)
        .with_scheduler(Scheduler::Backoff {
            match_limit: config.match_limit,
            ban_length: 2,
        })
        .with_search_threads(config.search_threads);
    if let Some(limit) = config.saturation_time_limit {
        runner = runner.with_time_limit(limit);
    }
    if let Some(flag) = interrupt {
        runner = runner.with_interrupt(flag);
    }
    let runner = runner.run(&all_rules());
    let roots: Vec<Id> = conversion
        .roots
        .iter()
        .map(|&r| runner.egraph.find(r))
        .collect();
    SaturatedState {
        egraph: runner.egraph,
        roots,
        name: conversion.name,
        input_names: conversion.input_names,
        output_names: conversion.output_names,
        saturation: runner.iterations,
        stop_reason: runner.stop_reason,
        conversion_time,
        saturation_time: t_saturate.elapsed(),
    }
}

/// Runs the configured extraction engine over a saturated state and converts
/// the winning selection back to an AIG. The pure extraction phase of
/// [`emorphic_flow`]: a failed extraction — or a winning selection the
/// backward conversion rejects — yields `None`, with the failure recorded on
/// the corresponding engine report instead of being masked.
pub fn extract_network(
    state: &SaturatedState,
    config: &FlowConfig,
) -> (Option<Aig>, Vec<EngineReport>) {
    let evaluator: Arc<dyn CostEvaluator> = match &config.cost_mode {
        CostMode::Quality => Arc::new(TechMapCost::new(config.library.clone())),
        CostMode::Runtime(model) => Arc::new(model.clone()),
    };
    // The flow is delay-oriented, so the portfolio scores candidates by
    // mapped (delay, area).
    let (extraction, mut engines) = run_extraction(
        config.extractor,
        &config.sa,
        evaluator,
        &config.library,
        ExtractionCost::Size,
        true,
        &state.egraph,
        &state.roots,
        &config.extract_budget,
    );
    let extracted = match extraction {
        Ok(extraction) => match crate::convert::try_selection_to_aig(
            &state.egraph,
            &extraction.selection,
            &state.roots,
            &state.input_names,
            &state.output_names,
            &state.name,
        ) {
            Ok(aig) => Some(aig),
            Err(e) => {
                if let Some(report) = engines.iter_mut().find(|r| r.won) {
                    report.won = false;
                    report.error = Some(format!("selection-to-AIG conversion failed: {e}"));
                }
                None
            }
        },
        Err(_) => None,
    };
    (extracted, engines)
}

/// The final technology-dependent round (`st; dch; map`) of the E-morphic
/// flow, exposed so re-extracted checkpoints can be re-mapped standalone.
/// Returns the pre-mapping network and the mapped netlist.
pub fn map_network(aig: &Aig, config: &FlowConfig) -> (Aig, Netlist) {
    conventional_round(aig, config, false)
}

/// Wall-clock breakdown of a flow run (the Fig. 9 data).
///
/// The four parts are measured over *disjoint* intervals of the flow — the
/// forward conversion is timed once inside `aig_to_egraph` and never added
/// again — so they sum to the measured flow runtime up to the few untimed
/// glue statements between phases (pinned by a regression test).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RuntimeBreakdown {
    /// Time spent in the conventional delay-oriented flow (SOP balancing,
    /// choices, mapping).
    pub conventional: Duration,
    /// Time spent converting between the circuit and the e-graph.
    pub conversion: Duration,
    /// Time spent in rewriting plus SA extraction and evaluation.
    pub extraction: Duration,
    /// Time spent in SAT-based CEC verification of the resynthesized network
    /// (zero when verification is disabled and for the baseline flow).
    pub verification: Duration,
}

impl RuntimeBreakdown {
    /// Total wall-clock time.
    pub fn total(&self) -> Duration {
        self.conventional + self.conversion + self.extraction + self.verification
    }

    /// Percentage split `(conventional, conversion, extraction,
    /// verification)`.
    pub fn percentages(&self) -> (f64, f64, f64, f64) {
        let total = self.total().as_secs_f64();
        if total <= 0.0 {
            return (0.0, 0.0, 0.0, 0.0);
        }
        (
            self.conventional.as_secs_f64() / total * 100.0,
            self.conversion.as_secs_f64() / total * 100.0,
            self.extraction.as_secs_f64() / total * 100.0,
            self.verification.as_secs_f64() / total * 100.0,
        )
    }
}

/// Result of running a flow on one circuit.
#[derive(Debug, Clone)]
pub struct FlowResult {
    /// Post-mapping quality of the final netlist.
    pub qor: Qor,
    /// Total runtime of the flow.
    pub runtime: Duration,
    /// Runtime breakdown (Fig. 9).
    pub breakdown: RuntimeBreakdown,
    /// The technology-independent network right before the final mapping.
    pub final_aig: Aig,
    /// Whether CEC *proved* equivalence against the input (always `true`
    /// when verification is disabled). `false` also covers an exhausted SAT
    /// budget: the resynthesized network is kept in that case — random
    /// simulation found no mismatch — but the proof did not complete.
    pub verified: bool,
    /// Statistics of the rewriting phase (empty for the baseline flow).
    pub egraph_nodes: usize,
    /// Number of e-classes after rewriting (0 for the baseline flow).
    pub egraph_classes: usize,
    /// Per-iteration reports of the saturation phase (empty for the baseline
    /// flow), including e-node counts and incremental-rebuild timings.
    pub saturation: Vec<egraph::IterationReport>,
    /// One report per extraction engine involved (a single row for one
    /// engine, one per member for a portfolio; empty for the baseline flow).
    pub extraction_engines: Vec<EngineReport>,
    /// Aggregated phase-boundary audit findings (empty at
    /// [`AuditLevel::Off`]; locations are prefixed with the phase name).
    pub audit: AuditReport,
    /// Per-window statistics when the resynthesis phase ran windowed
    /// (`None` on the monolithic and baseline paths). A populated `error`
    /// field means the windowed path failed and the flow fell back to the
    /// monolithic e-graph.
    pub window: Option<WindowReport>,
}

fn conventional_round(aig: &Aig, config: &FlowConfig, with_sop: bool) -> (Aig, Netlist) {
    let mut current = aig.strash_copy();
    if with_sop {
        current = sop_balance(&current, &config.lut_options);
    }
    current = current.strash_copy();
    current = dch_like(&current, &config.dch_options);
    let netlist = map_to_cells(&current, &config.library, &config.map_options);
    (current, netlist)
}

/// Runs the delay-oriented baseline flow.
pub fn baseline_flow(aig: &Aig, config: &FlowConfig) -> FlowResult {
    let start = Instant::now();
    let mut current = aig.clone();
    let mut qor = map_to_cells(&current, &config.library, &config.map_options).qor();
    let mut audit = AuditReport::new();
    for round in 0..config.rounds {
        let (next, netlist) = conventional_round(&current, config, true);
        qor = netlist.qor();
        if round + 1 == config.rounds {
            audit.absorb("map", audit_netlist(&next, &netlist, config.audit_level));
            audit.absorb("map", audit_aig_dag_only(&next, config.audit_level));
        }
        current = next;
    }
    qor.name = aig.name().to_string();
    let runtime = start.elapsed();
    FlowResult {
        qor,
        runtime,
        breakdown: RuntimeBreakdown {
            conventional: runtime,
            conversion: Duration::ZERO,
            extraction: Duration::ZERO,
            verification: Duration::ZERO,
        },
        final_aig: current,
        verified: true,
        egraph_nodes: 0,
        egraph_classes: 0,
        saturation: Vec::new(),
        extraction_engines: Vec::new(),
        audit,
        window: None,
    }
}

/// The resynthesis phase's product, shared by the monolithic and windowed
/// paths of [`emorphic_flow`].
struct ResynthPhase {
    /// The resynthesized network (`None` keeps the pre-resynthesis one).
    extracted: Option<Aig>,
    conversion_time: Duration,
    extraction_time: Duration,
    egraph_nodes: usize,
    egraph_classes: usize,
    saturation: Vec<egraph::IterationReport>,
    engines: Vec<EngineReport>,
    window: Option<WindowReport>,
}

/// The monolithic resynthesis phase: one e-graph over the whole design,
/// limited rewriting, engine-driven extraction.
fn monolithic_resynthesis_phase(
    current: &Aig,
    config: &FlowConfig,
    audit: &mut AuditReport,
) -> ResynthPhase {
    // `saturate_network` brackets `aig_to_egraph` with its own conversion
    // timer, which already covers the forward pass the conversion measures
    // internally as `forward_time`; adding `forward_time` on top would
    // double-count it and inflate the conversion share of the Fig. 9
    // breakdown. The saturation time plus the post-saturation bracket below
    // together reproduce the old single `t_extract` interval.
    let state = saturate_network(current, config);
    let t_extract = Instant::now();
    let egraph_nodes = state.egraph.total_nodes();
    let egraph_classes = state.egraph.num_classes();
    audit.absorb("saturate", audit_egraph(&state.egraph, config.audit_level));

    // A failed extraction (unrealizable root, empty portfolio) falls back to
    // the pre-resynthesis network, and so does a winning selection the
    // backward conversion rejects — in that case the conversion error is
    // recorded on the winning engine's report (and its win stripped, since
    // its result was not kept) so the failure stays visible in the reports.
    let (extracted, engines) = extract_network(&state, config);
    if let Some(extracted) = &extracted {
        audit.absorb("extract", audit_aig_dag_only(extracted, config.audit_level));
    }
    ResynthPhase {
        extracted,
        conversion_time: state.conversion_time,
        extraction_time: state.saturation_time + t_extract.elapsed(),
        egraph_nodes,
        egraph_classes,
        saturation: state.saturation,
        engines,
        window: None,
    }
}

/// The windowed resynthesis phase: carve, saturate per window, commit the
/// shrinking window extractions. A [`WindowError`] falls back to the
/// monolithic phase, with the error surfaced on the returned
/// [`WindowReport`] rather than silently masked.
fn windowed_resynthesis_phase(
    current: &Aig,
    opts: &WindowOptions,
    config: &FlowConfig,
    audit: &mut AuditReport,
) -> ResynthPhase {
    let t_total = Instant::now();
    match windowed_resynthesis(current, opts, config) {
        Ok((rebuilt, part, report)) => {
            audit.absorb(
                "partition",
                audit_partition(current, &part, config.audit_level),
            );
            audit.absorb("extract", audit_aig_dag_only(&rebuilt, config.audit_level));
            ResynthPhase {
                extracted: Some(rebuilt),
                conversion_time: report.partition_time,
                extraction_time: t_total.elapsed().saturating_sub(report.partition_time),
                egraph_nodes: report.egraph_nodes,
                egraph_classes: report.egraph_classes,
                saturation: Vec::new(),
                engines: Vec::new(),
                window: Some(report),
            }
        }
        Err(e) => {
            let mut phase = monolithic_resynthesis_phase(current, config, audit);
            phase.window = Some(WindowReport {
                error: Some(e.to_string()),
                ..WindowReport::default()
            });
            phase
        }
    }
}

/// Runs the E-morphic flow: the baseline rounds with e-graph resynthesis
/// inserted before the final mapping round.
pub fn emorphic_flow(aig: &Aig, config: &FlowConfig) -> FlowResult {
    let start = Instant::now();
    let mut conventional_time = Duration::ZERO;
    let mut audit = AuditReport::new();

    // Rounds 1..N-1 of the conventional flow plus the technology-independent
    // part of the final round (st; if -g).
    let t0 = Instant::now();
    let current = prepare_network(aig, config);
    conventional_time += t0.elapsed();

    // E-graph resynthesis: monolithic (one e-graph over the whole design) or
    // windowed (carve → saturate per window → commit), per the config.
    let phase = match &config.partitioning {
        Some(opts) => windowed_resynthesis_phase(&current, opts, config, &mut audit),
        None => monolithic_resynthesis_phase(&current, config, &mut audit),
    };
    let ResynthPhase {
        extracted: extracted_aig,
        conversion_time,
        extraction_time,
        egraph_nodes,
        egraph_classes,
        saturation,
        engines: extraction_engines,
        window,
    } = phase;

    // Verify, and fall back to the pre-resynthesis network on a proven
    // mismatch. An exhausted SAT budget keeps the resynthesized network
    // (simulation inside `check_equivalence` already failed to refute it)
    // but leaves `verified` false.
    let mut verified = true;
    let mut resynthesized = extracted_aig.unwrap_or_else(|| current.clone());
    let t_verify = Instant::now();
    if config.verify {
        match check_equivalence(&current, &resynthesized, &config.cec) {
            cec::CecResult::Equivalent => {}
            cec::CecResult::NotEquivalent(_) => {
                verified = false;
                resynthesized = current.clone();
            }
            cec::CecResult::Unknown => verified = false,
        }
    }
    let verification_time = t_verify.elapsed();

    // Backward conversion time is part of the extraction phase already; the
    // remaining work is the final (st; dch; map) round.
    let t_final = Instant::now();
    let (final_aig, netlist) = conventional_round(&resynthesized, config, false);
    audit.absorb(
        "map",
        audit_netlist(&final_aig, &netlist, config.audit_level),
    );
    audit.absorb("map", audit_aig_dag_only(&final_aig, config.audit_level));
    conventional_time += t_final.elapsed();

    let mut qor = netlist.qor();
    qor.name = aig.name().to_string();
    FlowResult {
        qor,
        runtime: start.elapsed(),
        breakdown: RuntimeBreakdown {
            conventional: conventional_time,
            conversion: conversion_time,
            extraction: extraction_time,
            verification: verification_time,
        },
        final_aig,
        verified,
        egraph_nodes,
        egraph_classes,
        saturation,
        extraction_engines,
        audit,
        window,
    }
}

/// Errors of the choice-aware mapping flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapFlowError {
    /// The extraction engine could not produce a per-class selection.
    Extract(ExtractError),
    /// The e-graph could not be exported as a choice network.
    Choice(ChoiceError),
    /// Technology mapping failed (typed, instead of aborting the process).
    Map(MapError),
    /// The windowed saturation path failed (partitioning or stitching).
    Window(WindowError),
}

impl std::fmt::Display for MapFlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapFlowError::Extract(e) => write!(f, "extraction failed: {e}"),
            MapFlowError::Choice(e) => write!(f, "choice export failed: {e}"),
            MapFlowError::Map(e) => write!(f, "technology mapping failed: {e}"),
            MapFlowError::Window(e) => write!(f, "windowed saturation failed: {e}"),
        }
    }
}

impl std::error::Error for MapFlowError {}

impl From<ExtractError> for MapFlowError {
    fn from(e: ExtractError) -> Self {
        MapFlowError::Extract(e)
    }
}

impl From<ChoiceError> for MapFlowError {
    fn from(e: ChoiceError) -> Self {
        MapFlowError::Choice(e)
    }
}

impl From<MapError> for MapFlowError {
    fn from(e: MapError) -> Self {
        MapFlowError::Map(e)
    }
}

impl From<WindowError> for MapFlowError {
    fn from(e: WindowError) -> Self {
        MapFlowError::Window(e)
    }
}

/// Which metric the choice-aware mapping flow optimizes first when choosing
/// between the choice-aware and choice-free netlists of the same run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MapObjective {
    /// Area first, delay as the tie-breaker (the PR-4 behavior).
    #[default]
    Area,
    /// Delay first, area as the tie-breaker (the timing-driven scenario:
    /// meet delay, then recover area).
    Delay,
}

/// Configuration of [`emorphic_map_flow`].
#[derive(Debug, Clone)]
pub struct MapFlowConfig {
    /// Saturation, mapping, library and CEC knobs (shared with
    /// [`emorphic_flow`]). `flow.map_options` carries the delay target and
    /// the recovery-pass count (see [`MapFlowConfig::with_delay_target_ps`]
    /// and [`MapFlowConfig::with_recovery_passes`]).
    pub flow: FlowConfig,
    /// Choice-export configuration (members per class, ranking cost).
    pub choices: ChoiceConfig,
    /// Map with choices (`false` degenerates to mapping the extracted
    /// representative network, the apples-to-apples baseline).
    pub use_choices: bool,
    /// Primary selection metric between the choice-aware and choice-free
    /// netlists. The kept netlist is never worse than the baseline on this
    /// metric, and never worse on the secondary one at equal primary.
    pub objective: MapObjective,
    /// Which extraction engine picks the class representatives the choice
    /// export is built around. The default [`ExtractorKind::BottomUp`] is the
    /// greedy selection the exporter historically made inline; any other
    /// engine reshapes which members every choice class keeps.
    pub extractor: ExtractorKind,
}

impl MapFlowConfig {
    /// The paper-style configuration with choices enabled.
    pub fn paper() -> Self {
        MapFlowConfig {
            flow: FlowConfig::paper(),
            choices: ChoiceConfig::default(),
            use_choices: true,
            objective: MapObjective::Area,
            extractor: ExtractorKind::BottomUp,
        }
    }

    /// A reduced configuration for tests, examples and CI.
    pub fn fast() -> Self {
        MapFlowConfig {
            flow: FlowConfig::fast(),
            choices: ChoiceConfig::default(),
            use_choices: true,
            objective: MapObjective::Area,
            extractor: ExtractorKind::BottomUp,
        }
    }

    /// Selects the extraction engine driving the class representatives.
    #[must_use]
    pub fn with_extractor(mut self, extractor: ExtractorKind) -> Self {
        self.extractor = extractor;
        self
    }

    /// Enables or disables choice-aware mapping.
    #[must_use]
    pub fn with_choices(mut self, use_choices: bool) -> Self {
        self.use_choices = use_choices;
        self
    }

    /// Sets the primary selection metric.
    #[must_use]
    pub fn with_objective(mut self, objective: MapObjective) -> Self {
        self.objective = objective;
        self
    }

    /// Sets the mapper's delay target in ps (targets below the achievable
    /// critical path are floored at it; extra slack is traded for area by
    /// the recovery passes).
    #[must_use]
    pub fn with_delay_target_ps(mut self, target: f64) -> Self {
        self.flow.map_options.delay_target_ps = Some(target);
        self
    }

    /// Sets the number of map → required-time → recover passes.
    #[must_use]
    pub fn with_recovery_passes(mut self, passes: usize) -> Self {
        self.flow.map_options.area_passes = passes;
        self
    }
}

/// Result of the choice-aware mapping flow on one circuit.
#[derive(Debug, Clone)]
pub struct MapFlowResult {
    /// The selected mapped netlist (the better of choice-aware and
    /// choice-free when choices are enabled).
    pub netlist: Netlist,
    /// QoR of [`MapFlowResult::netlist`].
    pub qor: Qor,
    /// QoR of mapping the representative-only network (the choice-free
    /// baseline inside the same run).
    pub base_qor: Qor,
    /// Whether the choice-aware netlist won the selection.
    pub used_choices: bool,
    /// Worst slack of the kept netlist in ps: effective delay target minus
    /// critical-path delay (non-negative by construction).
    pub worst_slack_ps: f64,
    /// Whether SAT CEC *proved* the mapped netlist equivalent to the input.
    pub verified: bool,
    /// Choice-export statistics (live classes, alternatives, rejections).
    pub export: ExportStats,
    /// One report per extraction engine involved in picking the class
    /// representatives.
    pub engines: Vec<EngineReport>,
    /// E-nodes after saturation.
    pub egraph_nodes: usize,
    /// E-classes after saturation.
    pub egraph_classes: usize,
    /// Total wall-clock time.
    pub runtime: Duration,
    /// Aggregated phase-boundary audit findings (empty at
    /// [`AuditLevel::Off`]; locations are prefixed with the phase name).
    pub audit: AuditReport,
    /// Per-window statistics when the saturation ran windowed (`None` on the
    /// monolithic path).
    pub window: Option<WindowReport>,
}

/// The choice-aware mapping flow: saturate → export the e-graph as a
/// [`choices::ChoiceAig`] → map with choice-aware cut enumeration → CEC-verify
/// the mapped netlist against the input.
///
/// Unlike [`emorphic_flow`], which collapses the saturated e-graph to a
/// single extracted design before mapping, this flow hands the mapper the
/// whole recorded e-space: every live e-class contributes its top-K
/// structures, and `techmap` picks the cheapest realization per cut. The
/// choice-free baseline (mapping just the representative network — exactly
/// what extraction alone would produce) is mapped in the same run, and the
/// better netlist is kept, so enabling choices can never worsen the result.
///
/// # Errors
/// Returns a [`MapFlowError`] if the export or the mapping fails; both are
/// typed conditions, not panics.
pub fn emorphic_map_flow(aig: &Aig, config: &MapFlowConfig) -> Result<MapFlowResult, MapFlowError> {
    let start = Instant::now();
    let space = match &config.flow.partitioning {
        Some(opts) => windowed_choice_space(aig, opts, config)?,
        None => monolithic_choice_space(aig, config)?,
    };
    map_choice_space(aig, config, space, start)
}

/// The recorded e-space handed to choice-aware mapping, with the bookkeeping
/// each saturation path collects along the way.
struct ChoiceSpace {
    network: choices::ChoiceAig,
    export: ExportStats,
    engines: Vec<EngineReport>,
    egraph_nodes: usize,
    egraph_classes: usize,
    audit: AuditReport,
    window: Option<WindowReport>,
}

/// The export configuration actually handed to the choice exporter:
/// disabling choices degenerates to one member per class.
fn effective_choice_config(config: &MapFlowConfig) -> ChoiceConfig {
    ChoiceConfig {
        max_choices: if config.use_choices {
            config.choices.max_choices
        } else {
            1
        },
        cost: config.choices.cost,
    }
}

/// Builds the choice space from one e-graph over the whole design.
fn monolithic_choice_space(aig: &Aig, config: &MapFlowConfig) -> Result<ChoiceSpace, MapFlowError> {
    // Saturation (same knobs as `emorphic_flow`).
    let conversion = aig_to_egraph(&aig.strash_copy());
    let runner = Runner::with_egraph(conversion.egraph)
        .with_iter_limit(config.flow.rewrite_iterations)
        .with_node_limit(config.flow.node_limit)
        .with_scheduler(Scheduler::Backoff {
            match_limit: config.flow.match_limit,
            ban_length: 2,
        })
        .with_search_threads(config.flow.search_threads)
        .run(&all_rules());
    let egraph = runner.egraph;
    let roots: Vec<egraph::Id> = conversion.roots.iter().map(|&r| egraph.find(r)).collect();
    let audit_level = config.flow.audit_level;
    let mut audit = AuditReport::new();
    audit.absorb("saturate", audit_egraph(&egraph, audit_level));

    // Engine-driven per-class selection: the configured engine picks every
    // class representative, and the exporter builds the choice network
    // around that selection.
    let structural_cost = match config.choices.cost {
        ChoiceCost::Size => ExtractionCost::Size,
        ChoiceCost::Depth => ExtractionCost::Depth,
    };
    let evaluator: Arc<dyn CostEvaluator> = Arc::new(TechMapCost::new(config.flow.library.clone()));
    let (extraction, engines) = run_extraction(
        config.extractor,
        &config.flow.sa,
        evaluator,
        &config.flow.library,
        structural_cost,
        config.objective == MapObjective::Delay,
        &egraph,
        &roots,
        &config.flow.extract_budget,
    );
    let extraction = extraction?;
    let selection = extraction_to_class_selection(&egraph, &extraction);

    // Choice export: the whole e-space, not one extracted design.
    let (network, export) = egraph_to_choices_with_selection(
        &egraph,
        &roots,
        &conversion.input_names,
        &conversion.output_names,
        &conversion.name,
        &effective_choice_config(config),
        &selection,
    )?;
    Ok(ChoiceSpace {
        network,
        export,
        engines,
        egraph_nodes: egraph.total_nodes(),
        egraph_classes: egraph.num_classes(),
        audit,
        window: None,
    })
}

/// Builds the choice space by windowed saturation: carve, saturate each
/// window as an independent e-graph, stitch the per-window choice spaces
/// into one global network ([`crate::windowed::saturate_windows`]).
fn windowed_choice_space(
    aig: &Aig,
    opts: &WindowOptions,
    config: &MapFlowConfig,
) -> Result<ChoiceSpace, MapFlowError> {
    let host = aig.strash_copy();
    let (stitched, part, report) =
        saturate_windows(&host, opts, &config.flow, &effective_choice_config(config))?;
    let audit_level = config.flow.audit_level;
    let mut audit = AuditReport::new();
    audit.absorb("partition", audit_partition(&host, &part, audit_level));
    audit.absorb(
        "stitch",
        audit_stitched(&host, &part, &stitched, audit_level),
    );
    let export = ExportStats {
        live_classes: stitched.stats.classes,
        classes: stitched.stats.classes,
        alternatives: stitched.stats.alternatives,
        rejected: stitched.stats.dropped_ordering + stitched.stats.dropped_duplicate,
    };
    Ok(ChoiceSpace {
        network: stitched.network,
        export,
        engines: Vec::new(),
        egraph_nodes: report.egraph_nodes,
        egraph_classes: report.egraph_classes,
        audit,
        window: Some(report),
    })
}

/// The shared mapping tail: map the representative baseline, map with
/// choices, keep the better netlist, CEC-verify the kept one.
fn map_choice_space(
    aig: &Aig,
    config: &MapFlowConfig,
    space: ChoiceSpace,
    start: Instant,
) -> Result<MapFlowResult, MapFlowError> {
    let ChoiceSpace {
        network,
        export,
        engines,
        egraph_nodes,
        egraph_classes,
        mut audit,
        window,
    } = space;
    let audit_level = config.flow.audit_level;
    audit.absorb("choice-export", audit_choices(&network, audit_level));

    // Choice-free baseline: map the representative cone only.
    let repr_network = network.repr_network();
    let base_netlist = try_map_to_cells(
        &repr_network,
        &config.flow.library,
        &config.flow.map_options,
    )?;
    let base_qor = base_netlist.qor();

    // Choice-aware mapping, keeping the better netlist.
    let mut used_choices = false;
    let mut netlist = base_netlist;
    if config.use_choices && network.num_classes() > 0 {
        // A mapping failure over the choice network (e.g. a dangling
        // alternative with no library-matchable cut) falls back to the
        // already-mapped baseline: enabling choices must never make the flow
        // fail where the choice-free path succeeds.
        if let Ok(choice_netlist) =
            try_map_to_cells_with_choices(&network, &config.flow.library, &config.flow.map_options)
        {
            // Keep the netlist that wins on the configured objective:
            // lexicographic on (primary, secondary), so the kept result is
            // Pareto-no-worse than the baseline on the primary metric.
            let better = match config.objective {
                MapObjective::Area => {
                    (choice_netlist.area_um2(), choice_netlist.delay_ps())
                        < (netlist.area_um2(), netlist.delay_ps())
                }
                MapObjective::Delay => {
                    (choice_netlist.delay_ps(), choice_netlist.area_um2())
                        < (netlist.delay_ps(), netlist.area_um2())
                }
            };
            if better {
                used_choices = true;
                netlist = choice_netlist;
            }
        }
    }
    let mapped_source: &Aig = if used_choices {
        network.aig()
    } else {
        &repr_network
    };
    audit.absorb("map", audit_netlist(mapped_source, &netlist, audit_level));

    // CEC the mapped netlist (re-synthesized into AIG form) against the
    // original input. The sweeping variant merges the structurally aligned
    // cones (mapped gates correspond to source cuts) bottom-up, which closes
    // arithmetic miters the monolithic check cannot within the budget.
    let mut verified = true;
    if config.flow.verify {
        let mapped_aig = netlist.to_aig(mapped_source);
        verified =
            cec::check_equivalence_swept(aig, &mapped_aig, &config.flow.cec, &config.flow.sweep)
                .is_equivalent();
        audit.absorb("sweep", audit_aig_dag_only(&mapped_aig, audit_level));
    }

    let mut qor = netlist.qor();
    qor.name = aig.name().to_string();
    let worst_slack_ps = netlist.worst_slack_ps();
    Ok(MapFlowResult {
        qor,
        base_qor,
        netlist,
        used_choices,
        worst_slack_ps,
        verified,
        export,
        engines,
        egraph_nodes,
        egraph_classes,
        runtime: start.elapsed(),
        audit,
        window,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_flow_produces_sane_qor() {
        let circuit = benchgen::adder(8).aig;
        let config = FlowConfig::fast();
        let result = baseline_flow(&circuit, &config);
        assert!(result.qor.area_um2 > 0.0);
        assert!(result.qor.delay_ps > 0.0);
        assert!(result.qor.levels > 0);
        assert_eq!(result.qor.name, "adder");
        assert!(result.verified);
        assert_eq!(result.breakdown.conversion, Duration::ZERO);
    }

    #[test]
    fn emorphic_flow_verifies_and_reports_breakdown() {
        let circuit = benchgen::adder(6).aig;
        let config = FlowConfig::fast();
        let result = emorphic_flow(&circuit, &config);
        assert!(result.verified, "resynthesized circuit must be equivalent");
        assert!(result.qor.delay_ps > 0.0);
        assert!(result.egraph_nodes > 0);
        assert!(result.egraph_classes > 0);
        let (conv_pct, conversion_pct, extract_pct, verify_pct) = result.breakdown.percentages();
        let total = conv_pct + conversion_pct + extract_pct + verify_pct;
        assert!(
            (total - 100.0).abs() < 1.0,
            "percentages sum to ~100, got {total}"
        );
        assert!(extract_pct > 0.0);
    }

    #[test]
    fn paranoid_audit_is_clean_on_flows() {
        let circuit = benchgen::adder(6).aig;
        let config = FlowConfig::fast().with_audit_level(AuditLevel::Paranoid);
        let result = emorphic_flow(&circuit, &config);
        assert!(result.audit.checks_run > 0);
        assert!(result.audit.is_clean(), "{}", result.audit);

        let map_config = MapFlowConfig {
            flow: config,
            ..MapFlowConfig::fast()
        };
        let map_result = emorphic_map_flow(&circuit, &map_config).unwrap();
        assert!(map_result.audit.checks_run > 0);
        assert!(map_result.audit.is_clean(), "{}", map_result.audit);

        let base = baseline_flow(
            &circuit,
            &FlowConfig::fast().with_audit_level(AuditLevel::Paranoid),
        );
        assert!(base.audit.checks_run > 0);
        assert!(base.audit.is_clean(), "{}", base.audit);

        // Off runs no checks at all.
        let off = emorphic_flow(&circuit, &FlowConfig::fast());
        assert_eq!(off.audit.checks_run, 0);
        assert!(off.audit.is_clean());
    }

    #[test]
    fn breakdown_sums_to_measured_runtime() {
        // Regression for the double-counted forward conversion time: the
        // breakdown parts are measured over disjoint intervals, so their sum
        // can never exceed the measured runtime, and the untimed glue between
        // phases must stay a small fraction of it.
        let circuit = benchgen::adder(8).aig;
        let config = FlowConfig::fast();
        let result = emorphic_flow(&circuit, &config);
        let total = result.breakdown.total();
        assert!(
            total <= result.runtime + Duration::from_millis(5),
            "breakdown {total:?} exceeds runtime {:?} (double-counted phase?)",
            result.runtime
        );
        let gap = result.runtime.saturating_sub(total);
        assert!(
            gap <= result.runtime / 20 + Duration::from_millis(10),
            "untimed gap {gap:?} is more than 5% of runtime {:?}",
            result.runtime
        );
    }

    #[test]
    fn parallel_search_threads_do_not_change_flow_results() {
        // `search_threads` only changes wall-clock time: the saturation
        // search is bit-identical for every thread count, and with the same
        // SA seed the whole flow lands on the same QoR.
        let circuit = benchgen::adder(6).aig;
        let serial = emorphic_flow(
            &circuit,
            &FlowConfig {
                search_threads: 1,
                ..FlowConfig::fast()
            },
        );
        let parallel = emorphic_flow(
            &circuit,
            &FlowConfig {
                search_threads: 4,
                ..FlowConfig::fast()
            },
        );
        assert_eq!(serial.egraph_nodes, parallel.egraph_nodes);
        assert_eq!(serial.egraph_classes, parallel.egraph_classes);
        assert_eq!(serial.saturation.len(), parallel.saturation.len());
        for (a, b) in serial.saturation.iter().zip(&parallel.saturation) {
            assert_eq!(a.applied, b.applied);
            assert_eq!(a.egraph_nodes, b.egraph_nodes);
            assert_eq!(a.search_complete, b.search_complete);
        }
        assert_eq!(serial.qor.area_um2, parallel.qor.area_um2);
        assert_eq!(serial.qor.delay_ps, parallel.qor.delay_ps);
    }

    #[test]
    fn emorphic_final_circuit_is_equivalent_to_input() {
        let circuit = benchgen::multiplier(3).aig;
        let config = FlowConfig::fast();
        let result = emorphic_flow(&circuit, &config);
        let check = check_equivalence(&circuit, &result.final_aig, &CecOptions::default());
        assert!(check.is_equivalent(), "{check:?}");
    }

    #[test]
    fn emorphic_not_worse_than_baseline_on_small_adder() {
        // On a tiny circuit both flows should land in the same ballpark; the
        // E-morphic result must never be dramatically worse.
        let circuit = benchgen::adder(6).aig;
        let config = FlowConfig::fast();
        let base = baseline_flow(&circuit, &config);
        let emorphic = emorphic_flow(&circuit, &config);
        assert!(emorphic.qor.delay_ps <= base.qor.delay_ps * 1.25 + 1.0);
    }

    #[test]
    fn map_flow_choices_never_worse_and_verified() {
        let circuit = benchgen::adder(6).aig;
        let config = MapFlowConfig::fast();
        let with_choices = emorphic_map_flow(&circuit, &config).unwrap();
        let without = emorphic_map_flow(&circuit, &config.clone().with_choices(false)).unwrap();
        assert!(with_choices.verified, "choice-mapped netlist must verify");
        assert!(without.verified);
        // The baseline inside both runs is the same representative mapping,
        // and the choice run keeps the better netlist, so it can never be
        // worse on area.
        assert_eq!(
            with_choices.base_qor.area_um2, without.qor.area_um2,
            "identical saturation must give identical representative mapping"
        );
        assert!(with_choices.qor.area_um2 <= without.qor.area_um2 + 1e-9);
    }

    #[test]
    fn map_flow_delay_objective_never_worse_on_delay() {
        // With the delay objective, the kept netlist's delay can never
        // exceed the choice-free baseline's (both runs see the same
        // deterministic saturation, and the flow keeps the delay-better
        // netlist).
        let circuit = benchgen::adder(6).aig;
        let config = MapFlowConfig::fast().with_objective(MapObjective::Delay);
        let with_choices = emorphic_map_flow(&circuit, &config).unwrap();
        let without = emorphic_map_flow(&circuit, &config.clone().with_choices(false)).unwrap();
        assert!(with_choices.verified);
        assert!(without.verified);
        assert!(with_choices.qor.delay_ps <= without.qor.delay_ps + 1e-9);
        assert!(with_choices.worst_slack_ps >= -1e-9);
    }

    #[test]
    fn map_flow_delay_target_and_recovery_knobs() {
        let circuit = benchgen::adder(6).aig;
        // Delay-optimal run fixes the achievable critical path.
        let optimal =
            emorphic_map_flow(&circuit, &MapFlowConfig::fast().with_recovery_passes(0)).unwrap();
        let target = optimal.qor.delay_ps * 1.5;
        let relaxed = emorphic_map_flow(
            &circuit,
            &MapFlowConfig::fast()
                .with_delay_target_ps(target)
                .with_recovery_passes(2),
        )
        .unwrap();
        assert!(relaxed.verified);
        // The recovered area never exceeds the delay-optimal mapping's, and
        // the kept netlist honors the target up to the baseline's own
        // achievable critical path (a floored target is reported, not faked).
        assert!(relaxed.qor.area_um2 <= optimal.qor.area_um2 + 1e-9);
        assert!(relaxed.qor.delay_ps <= target.max(relaxed.base_qor.delay_ps) + 1e-9);
        assert!(relaxed.netlist.delay_target_ps() >= relaxed.qor.delay_ps - 1e-9);
        assert!(relaxed.worst_slack_ps >= -1e-9);
    }

    #[test]
    fn map_flow_reports_export_stats() {
        let circuit = benchgen::multiplier(3).aig;
        let result = emorphic_map_flow(&circuit, &MapFlowConfig::fast()).unwrap();
        assert!(result.egraph_nodes > 0);
        assert!(result.export.live_classes > 0);
        assert!(result.verified);
        assert!(result.qor.area_um2 > 0.0);
    }

    #[test]
    fn runtime_mode_uses_learned_model() {
        let circuit = benchgen::adder(5).aig;
        // Train a tiny model on adders of various widths.
        let mapper = TechMapCost::new(asap7_like());
        let samples: Vec<(Aig, f64)> = [3usize, 4, 6, 8]
            .iter()
            .map(|&w| {
                let c = benchgen::adder(w).aig;
                let delay = mapper.qor(&c).delay_ps;
                (c, delay)
            })
            .collect();
        let model = LearnedCost::train(&samples, 1e-3);
        let config = FlowConfig::fast().with_learned_model(model);
        assert!(matches!(config.cost_mode, CostMode::Runtime(_)));
        assert_eq!(config.sa.threads, 6);
        let result = emorphic_flow(&circuit, &config);
        assert!(result.verified);
        assert!(result.qor.delay_ps > 0.0);
    }

    #[test]
    fn windowed_emorphic_flow_verifies_and_reports_windows() {
        let circuit = benchgen::adder(8).aig;
        let config = FlowConfig::fast().with_partitioning(WindowOptions::default());
        let result = emorphic_flow(&circuit, &config);
        assert!(result.verified, "windowed flow must stay equivalent");
        assert!(result.qor.delay_ps > 0.0);
        let report = result.window.expect("windowed path must report");
        assert!(report.error.is_none(), "{:?}", report.error);
        assert!(report.windows > 0);
        assert!(report.covered_ands > 0);
        // Monolithic and baseline paths report no window stats.
        let mono = emorphic_flow(&circuit, &FlowConfig::fast());
        assert!(mono.window.is_none());
        let base = baseline_flow(&circuit, &FlowConfig::fast());
        assert!(base.window.is_none());
    }

    #[test]
    fn windowed_map_flow_is_verified_and_audit_clean() {
        let circuit = benchgen::multiplier(4).aig;
        let config = MapFlowConfig {
            flow: FlowConfig::fast()
                .with_partitioning(WindowOptions::default())
                .with_audit_level(AuditLevel::Paranoid),
            ..MapFlowConfig::fast()
        };
        let result = emorphic_map_flow(&circuit, &config).unwrap();
        assert!(result.verified, "windowed mapped netlist must verify");
        assert!(result.qor.area_um2 > 0.0);
        assert!(result.audit.checks_run > 0);
        assert!(result.audit.is_clean(), "{}", result.audit);
        let report = result.window.expect("windowed path must report");
        assert!(report.windows > 0);
        assert!(report.error.is_none());
        assert!(result.egraph_nodes > 0);
    }
}
