//! Serializable reports of flow runs, for logging experiments and feeding
//! external plotting scripts.

use crate::flow::FlowResult;
use serde::{Deserialize, Serialize};

/// A flat, serializable summary of one flow run on one circuit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowReport {
    /// Circuit name.
    pub circuit: String,
    /// Flow label (e.g. `"baseline"`, `"emorphic"`, `"emorphic+ml"`).
    pub flow: String,
    /// Post-mapping area in µm².
    pub area_um2: f64,
    /// Post-mapping delay in ps.
    pub delay_ps: f64,
    /// Logic levels of the mapped netlist.
    pub levels: u32,
    /// Number of mapped gates.
    pub gates: usize,
    /// Total runtime in seconds.
    pub runtime_s: f64,
    /// Share of the runtime spent in the conventional flow (percent).
    pub conventional_pct: f64,
    /// Share spent in e-graph conversion (percent).
    pub conversion_pct: f64,
    /// Share spent in SA extraction (percent).
    pub extraction_pct: f64,
    /// Share spent in CEC verification (percent; 0 for the baseline flow).
    pub verification_pct: f64,
    /// Number of e-nodes after rewriting (0 for the baseline flow).
    pub egraph_nodes: usize,
    /// Number of e-classes after rewriting (0 for the baseline flow).
    pub egraph_classes: usize,
    /// Whether the result was verified equivalent to the input.
    pub verified: bool,
}

impl FlowReport {
    /// Builds a report from a flow result.
    pub fn new(flow: impl Into<String>, result: &FlowResult) -> Self {
        let (conventional_pct, conversion_pct, extraction_pct, verification_pct) =
            result.breakdown.percentages();
        FlowReport {
            circuit: result.qor.name.clone(),
            flow: flow.into(),
            area_um2: result.qor.area_um2,
            delay_ps: result.qor.delay_ps,
            levels: result.qor.levels,
            gates: result.qor.gates,
            runtime_s: result.runtime.as_secs_f64(),
            conventional_pct,
            conversion_pct,
            extraction_pct,
            verification_pct,
            egraph_nodes: result.egraph_nodes,
            egraph_classes: result.egraph_classes,
            verified: result.verified,
        }
    }

    /// Serializes a list of reports as a JSON array.
    pub fn to_json(reports: &[FlowReport]) -> String {
        serde_json::to_string_pretty(reports)
            .unwrap_or_else(|_| unreachable!("report serialization cannot fail"))
    }

    /// Parses a list of reports from JSON.
    ///
    /// # Errors
    /// Returns the serde error message on malformed input.
    pub fn from_json(text: &str) -> Result<Vec<FlowReport>, String> {
        serde_json::from_str(text).map_err(|e| e.to_string())
    }

    /// Renders a CSV header matching [`FlowReport::to_csv_row`].
    pub fn csv_header() -> String {
        "circuit,flow,area_um2,delay_ps,levels,gates,runtime_s,conventional_pct,conversion_pct,extraction_pct,verification_pct,egraph_nodes,egraph_classes,verified".to_string()
    }

    /// Renders the report as one CSV row.
    pub fn to_csv_row(&self) -> String {
        format!(
            "{},{},{:.3},{:.3},{},{},{:.3},{:.1},{:.1},{:.1},{:.1},{},{},{}",
            self.circuit,
            self.flow,
            self.area_um2,
            self.delay_ps,
            self.levels,
            self.gates,
            self.runtime_s,
            self.conventional_pct,
            self.conversion_pct,
            self.extraction_pct,
            self.verification_pct,
            self.egraph_nodes,
            self.egraph_classes,
            self.verified
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{baseline_flow, FlowConfig};

    #[test]
    fn report_roundtrips_through_json_and_csv() {
        let circuit = benchgen::adder(5).aig;
        let result = baseline_flow(&circuit, &FlowConfig::fast());
        let report = FlowReport::new("baseline", &result);
        assert_eq!(report.circuit, "adder");
        assert!(report.verified);
        let json = FlowReport::to_json(std::slice::from_ref(&report));
        let parsed = FlowReport::from_json(&json).unwrap();
        assert_eq!(parsed, vec![report.clone()]);
        assert!(FlowReport::from_json("not json").is_err());
        let csv = report.to_csv_row();
        assert_eq!(
            csv.split(',').count(),
            FlowReport::csv_header().split(',').count()
        );
        assert!(csv.starts_with("adder,baseline,"));
    }
}
