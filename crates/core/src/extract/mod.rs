//! E-graph extraction: pruned bottom-up extraction and the simulated
//! annealing extractor.

pub mod sa;

use crate::lang::BoolLang;
use egraph::{DagSelection, EGraph, FxHashMap, Id, Language};
use std::collections::VecDeque;

/// A concrete choice of one e-node per e-class over the Boolean language.
pub type Selection = DagSelection<BoolLang>;

/// The structural cost driving bottom-up extraction and neighbor generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtractionCost {
    /// "Sum cost" in Algorithm 1: total number of gate nodes (circuit size).
    Size,
    /// "Depth cost" in Algorithm 1: longest gate path (circuit depth).
    Depth,
}

/// Per-node gate cost: AND/OR count as one gate, inverters and leaves are free
/// (inverters are edge attributes in the AIG back-end).
fn node_cost(node: &BoolLang) -> u64 {
    match node {
        BoolLang::And(_) | BoolLang::Or(_) => 1,
        BoolLang::Not(_) | BoolLang::Const(_) | BoolLang::Var(_) => 0,
    }
}

/// Statistics of one extraction run, used by the solution-space-pruning
/// ablation (Fig. 6).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExtractStats {
    /// Number of e-node cost evaluations performed.
    pub nodes_evaluated: usize,
    /// Number of class-cost improvements committed.
    pub improvements: usize,
}

/// Greedy bottom-up extraction with **solution-space pruning**: a worklist
/// seeded with the leaf e-nodes; a class's parents are only re-examined when
/// the class's best cost improves, and e-nodes are never re-evaluated when
/// none of their children changed (their cached cost in `Costs_map` stays
/// valid). Returns the selection plus evaluation statistics.
pub fn bottom_up_extract(
    egraph: &EGraph<BoolLang>,
    cost_kind: ExtractionCost,
) -> (Selection, ExtractStats) {
    let mut stats = ExtractStats::default();
    let parent_index = egraph.parent_index();
    let mut costs: FxHashMap<Id, u64> = FxHashMap::default();
    let mut choices: FxHashMap<Id, BoolLang> = FxHashMap::default();

    // Seed the queue with the leaf e-nodes of every class.
    let mut queue: VecDeque<(Id, BoolLang)> = VecDeque::new();
    for class in egraph.classes() {
        for node in &class.nodes {
            if node.is_leaf() {
                queue.push_back((class.id, node.clone()));
            }
        }
    }

    while let Some((class_id, node)) = queue.pop_front() {
        // All children must already have a cost, otherwise the node will be
        // re-enqueued when the missing child class gets one.
        let mut ready = true;
        let mut combined = 0u64;
        for &child in node.children() {
            match costs.get(&egraph.find(child)) {
                Some(&c) => {
                    combined = match cost_kind {
                        ExtractionCost::Size => combined.saturating_add(c),
                        ExtractionCost::Depth => combined.max(c),
                    }
                }
                None => {
                    ready = false;
                    break;
                }
            }
        }
        if !ready {
            continue;
        }
        stats.nodes_evaluated += 1;
        let new_cost = combined.saturating_add(node_cost(&node));
        let previous = costs.get(&class_id).copied();
        if previous.is_none_or(|prev| new_cost < prev) {
            costs.insert(class_id, new_cost);
            choices.insert(class_id, node);
            stats.improvements += 1;
            // Propagate to the parents of this class (solution-space pruning:
            // nodes whose children did not improve are never revisited).
            if let Some(parents) = parent_index.get(&class_id) {
                for (parent_class, parent_node) in parents {
                    queue.push_back((*parent_class, parent_node.clone()));
                }
            }
        }
    }

    (Selection { choices }, stats)
}

/// Baseline extraction without pruning: repeatedly sweeps every e-node of
/// every class until a fixpoint is reached, re-evaluating node costs even when
/// nothing changed underneath (the behaviour Fig. 6 contrasts against).
pub fn bottom_up_extract_unpruned(
    egraph: &EGraph<BoolLang>,
    cost_kind: ExtractionCost,
) -> (Selection, ExtractStats) {
    let mut stats = ExtractStats::default();
    let mut costs: FxHashMap<Id, u64> = FxHashMap::default();
    let mut choices: FxHashMap<Id, BoolLang> = FxHashMap::default();
    let mut changed = true;
    while changed {
        changed = false;
        for class in egraph.classes() {
            for node in &class.nodes {
                let mut ready = true;
                let mut combined = 0u64;
                for &child in node.children() {
                    match costs.get(&egraph.find(child)) {
                        Some(&c) => {
                            combined = match cost_kind {
                                ExtractionCost::Size => combined.saturating_add(c),
                                ExtractionCost::Depth => combined.max(c),
                            }
                        }
                        None => {
                            ready = false;
                            break;
                        }
                    }
                }
                if !ready {
                    continue;
                }
                stats.nodes_evaluated += 1;
                let new_cost = combined.saturating_add(node_cost(node));
                if costs.get(&class.id).is_none_or(|&prev| new_cost < prev) {
                    costs.insert(class.id, new_cost);
                    choices.insert(class.id, node.clone());
                    stats.improvements += 1;
                    changed = true;
                }
            }
        }
    }
    (Selection { choices }, stats)
}

/// Computes the structural cost of a selection at the given roots.
pub fn selection_cost(
    egraph: &EGraph<BoolLang>,
    selection: &Selection,
    roots: &[Id],
    cost_kind: ExtractionCost,
) -> u64 {
    match cost_kind {
        ExtractionCost::Size => {
            // Count distinct gate classes reachable under the selection.
            let mut seen: egraph::FxHashSet<Id> = egraph::FxHashSet::default();
            let mut stack: Vec<Id> = roots.iter().map(|&r| egraph.find(r)).collect();
            let mut total = 0u64;
            while let Some(id) = stack.pop() {
                if !seen.insert(id) {
                    continue;
                }
                if let Some(node) = selection.node(id) {
                    total += node_cost(node);
                    for &child in node.children() {
                        stack.push(egraph.find(child));
                    }
                }
            }
            total
        }
        ExtractionCost::Depth => {
            let mut memo: FxHashMap<Id, u64> = FxHashMap::default();
            fn depth_of(
                egraph: &EGraph<BoolLang>,
                selection: &Selection,
                id: Id,
                memo: &mut FxHashMap<Id, u64>,
            ) -> u64 {
                if let Some(&d) = memo.get(&id) {
                    return d;
                }
                memo.insert(id, 0);
                let d = match selection.node(id) {
                    Some(node) => {
                        let child_max = node
                            .children()
                            .iter()
                            .map(|&c| depth_of(egraph, selection, egraph.find(c), memo))
                            .max()
                            .unwrap_or(0);
                        child_max + node_cost(node)
                    }
                    None => 0,
                };
                memo.insert(id, d);
                d
            }
            roots
                .iter()
                .map(|&r| depth_of(egraph, selection, egraph.find(r), &mut memo))
                .max()
                .unwrap_or(0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::aig_to_egraph;
    use crate::rules::all_rules;
    use egraph::{Runner, Scheduler};

    fn saturated_egraph(aig: &aig::Aig, iters: usize) -> (EGraph<BoolLang>, Vec<Id>) {
        let conv = aig_to_egraph(aig);
        let runner = Runner::with_egraph(conv.egraph)
            .with_iter_limit(iters)
            .with_node_limit(20_000)
            .with_scheduler(Scheduler::Backoff {
                match_limit: 2_000,
                ban_length: 2,
            })
            .run(&all_rules());
        let roots = conv.roots.iter().map(|&r| runner.egraph.find(r)).collect();
        (runner.egraph, roots)
    }

    #[test]
    fn pruned_and_unpruned_agree_on_cost() {
        // Both algorithms compute the same per-class least fixpoint; under the
        // depth cost the resulting root cost is identical (the size cost is a
        // tree cost, so equally-optimal selections may differ in DAG sharing).
        let aig = benchgen::adder(4).aig;
        let (egraph, roots) = saturated_egraph(&aig, 3);
        let (sel_p, _) = bottom_up_extract(&egraph, ExtractionCost::Depth);
        let (sel_u, _) = bottom_up_extract_unpruned(&egraph, ExtractionCost::Depth);
        let cost_p = selection_cost(&egraph, &sel_p, &roots, ExtractionCost::Depth);
        let cost_u = selection_cost(&egraph, &sel_u, &roots, ExtractionCost::Depth);
        assert_eq!(cost_p, cost_u);
    }

    #[test]
    fn pruning_reduces_evaluations() {
        let aig = benchgen::adder(5).aig;
        let (egraph, _roots) = saturated_egraph(&aig, 3);
        let (_, stats_p) = bottom_up_extract(&egraph, ExtractionCost::Size);
        let (_, stats_u) = bottom_up_extract_unpruned(&egraph, ExtractionCost::Size);
        assert!(
            stats_p.nodes_evaluated < stats_u.nodes_evaluated,
            "pruned {} vs unpruned {}",
            stats_p.nodes_evaluated,
            stats_u.nodes_evaluated
        );
    }

    #[test]
    fn every_reachable_class_gets_a_choice() {
        let aig = benchgen::multiplier(3).aig;
        let (egraph, roots) = saturated_egraph(&aig, 2);
        let (selection, _) = bottom_up_extract(&egraph, ExtractionCost::Depth);
        // Walk the selection from the roots: every visited class has a node.
        let mut stack: Vec<Id> = roots.clone();
        let mut seen = egraph::FxHashSet::default();
        while let Some(id) = stack.pop() {
            let id = egraph.find(id);
            if !seen.insert(id) {
                continue;
            }
            let node = selection.node(id).expect("reachable class has a selection");
            for &c in node.children() {
                stack.push(c);
            }
        }
        assert!(!seen.is_empty());
    }

    #[test]
    fn depth_extraction_not_deeper_than_size_extraction() {
        let aig = benchgen::adder(6).aig;
        let (egraph, roots) = saturated_egraph(&aig, 4);
        let (sel_depth, _) = bottom_up_extract(&egraph, ExtractionCost::Depth);
        let (sel_size, _) = bottom_up_extract(&egraph, ExtractionCost::Size);
        let d_depth = selection_cost(&egraph, &sel_depth, &roots, ExtractionCost::Depth);
        let d_size = selection_cost(&egraph, &sel_size, &roots, ExtractionCost::Depth);
        assert!(d_depth <= d_size);
    }

    #[test]
    fn extraction_result_converts_to_equivalent_circuit() {
        let aig = benchgen::adder(4).aig;
        let conv = aig_to_egraph(&aig);
        let (egraph, roots) = saturated_egraph(&aig, 3);
        let (selection, _) = bottom_up_extract(&egraph, ExtractionCost::Size);
        let back = crate::convert::selection_to_aig(
            &egraph,
            &selection,
            &roots,
            &conv.input_names,
            &conv.output_names,
            "extracted",
        );
        for p in 0..(1usize << aig.num_inputs()) {
            let bits: Vec<bool> = (0..aig.num_inputs()).map(|i| p >> i & 1 == 1).collect();
            assert_eq!(aig.evaluate(&bits), back.evaluate(&bits), "pattern {p}");
        }
    }
}
