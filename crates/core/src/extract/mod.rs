//! E-graph extraction: the [`ExtractionEngine`] trait, its engines, and the
//! shared bottom-up dynamic program they build on.
//!
//! Four engines ship behind the one trait:
//!
//! * [`BottomUpEngine`] — the exact greedy DP (pruned worklist or unpruned
//!   fixpoint sweeps) minimizing a structural tree cost.
//! * [`GlobalGreedyDagEngine`] — greedy refinement that charges shared
//!   subgraphs once (true DAG cost instead of tree cost).
//! * [`SlackAwareEngine`] — depth/slack-driven selection: hold the critical
//!   depth, spend per-class slack on smaller structures.
//! * [`sa::SaEngine`] — the paper's simulated-annealing extractor guided by a
//!   [`costmodel::CostEvaluator`].
//!
//! [`PortfolioEngine`] races any set of them in parallel and picks the best
//! result deterministically.

pub mod engine;
pub mod greedy_dag;
pub mod sa;
pub mod slack;

pub use engine::{
    BottomUpEngine, EngineReport, ExtractBudget, ExtractError, Extraction, ExtractionEngine,
    ExtractorKind, PortfolioEngine, PortfolioScorer,
};
pub use greedy_dag::GlobalGreedyDagEngine;
pub use sa::SaEngine;
pub use slack::SlackAwareEngine;

use crate::lang::BoolLang;
use egraph::{DagSelection, EGraph, FxHashMap, Id, Language, SelectionError};
use std::collections::VecDeque;
use std::time::Duration;

/// A concrete choice of one e-node per e-class over the Boolean language.
pub type Selection = DagSelection<BoolLang>;

/// The structural cost driving bottom-up extraction and neighbor generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtractionCost {
    /// "Sum cost" in Algorithm 1: total number of gate nodes (circuit size).
    Size,
    /// "Depth cost" in Algorithm 1: longest gate path (circuit depth).
    Depth,
}

/// Per-node gate cost: AND/OR count as one gate, inverters and leaves are free
/// (inverters are edge attributes in the AIG back-end).
pub(crate) fn node_cost(node: &BoolLang) -> u64 {
    match node {
        BoolLang::And(_) | BoolLang::Or(_) => 1,
        BoolLang::Not(_) | BoolLang::Const(_) | BoolLang::Var(_) => 0,
    }
}

/// Statistics of one extraction run, shared by every engine (and used by the
/// solution-space-pruning ablation, Fig. 6).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExtractStats {
    /// Number of e-node cost evaluations performed.
    pub nodes_evaluated: usize,
    /// Number of class-cost improvements committed.
    pub improvements: usize,
    /// Wall-clock time of the run ([`Duration::ZERO`] when not measured).
    pub runtime: Duration,
}

/// The shared bottom-up dynamic program: per-class least-fixpoint cost and
/// the node realizing it. `pruned` selects between the worklist algorithm
/// (solution-space pruning, Fig. 6) and the naive fixpoint sweeps it is
/// ablated against; both converge to the same per-class costs.
pub(crate) fn bottom_up_with_costs(
    egraph: &EGraph<BoolLang>,
    cost_kind: ExtractionCost,
    pruned: bool,
) -> (Selection, FxHashMap<Id, u64>, ExtractStats) {
    let mut stats = ExtractStats::default();
    let mut costs: FxHashMap<Id, u64> = FxHashMap::default();
    let mut choices: FxHashMap<Id, BoolLang> = FxHashMap::default();

    if pruned {
        // Worklist seeded with the leaf e-nodes; a class's parents are only
        // re-examined when the class's best cost improves, and e-nodes are
        // never re-evaluated when none of their children changed.
        let parent_index = egraph.parent_index();
        let mut queue: VecDeque<(Id, BoolLang)> = VecDeque::new();
        for class in egraph.classes() {
            for node in &class.nodes {
                if node.is_leaf() {
                    queue.push_back((class.id, node.clone()));
                }
            }
        }
        while let Some((class_id, node)) = queue.pop_front() {
            // All children must already have a cost, otherwise the node will
            // be re-enqueued when the missing child class gets one.
            let mut ready = true;
            let mut combined = 0u64;
            for &child in node.children() {
                match costs.get(&egraph.find(child)) {
                    Some(&c) => {
                        combined = match cost_kind {
                            ExtractionCost::Size => combined.saturating_add(c),
                            ExtractionCost::Depth => combined.max(c),
                        }
                    }
                    None => {
                        ready = false;
                        break;
                    }
                }
            }
            if !ready {
                continue;
            }
            stats.nodes_evaluated += 1;
            let new_cost = combined.saturating_add(node_cost(&node));
            let previous = costs.get(&class_id).copied();
            if previous.is_none_or(|prev| new_cost < prev) {
                costs.insert(class_id, new_cost);
                choices.insert(class_id, node);
                stats.improvements += 1;
                if let Some(parents) = parent_index.get(&class_id) {
                    for (parent_class, parent_node) in parents {
                        queue.push_back((*parent_class, parent_node.clone()));
                    }
                }
            }
        }
    } else {
        // Unpruned baseline: repeatedly sweep every e-node of every class
        // until a fixpoint, re-evaluating node costs even when nothing
        // changed underneath (the behaviour Fig. 6 contrasts against).
        let mut changed = true;
        while changed {
            changed = false;
            for class in egraph.classes() {
                for node in &class.nodes {
                    let mut ready = true;
                    let mut combined = 0u64;
                    for &child in node.children() {
                        match costs.get(&egraph.find(child)) {
                            Some(&c) => {
                                combined = match cost_kind {
                                    ExtractionCost::Size => combined.saturating_add(c),
                                    ExtractionCost::Depth => combined.max(c),
                                }
                            }
                            None => {
                                ready = false;
                                break;
                            }
                        }
                    }
                    if !ready {
                        continue;
                    }
                    stats.nodes_evaluated += 1;
                    let new_cost = combined.saturating_add(node_cost(node));
                    if costs.get(&class.id).is_none_or(|&prev| new_cost < prev) {
                        costs.insert(class.id, new_cost);
                        choices.insert(class.id, node.clone());
                        stats.improvements += 1;
                        changed = true;
                    }
                }
            }
        }
    }

    (Selection { choices }, costs, stats)
}

/// Greedy bottom-up extraction with **solution-space pruning** (Fig. 6).
///
/// Kept as a plain function for the annealing chains and the tests; external
/// callers should go through [`BottomUpEngine`], which also reports the
/// per-class cost map.
pub fn bottom_up_extract(
    egraph: &EGraph<BoolLang>,
    cost_kind: ExtractionCost,
) -> (Selection, ExtractStats) {
    let (selection, _, stats) = bottom_up_with_costs(egraph, cost_kind, true);
    (selection, stats)
}

/// Computes the structural cost of a selection at the given roots, reporting
/// a reachable class without a selected node as a typed error instead of
/// silently treating it as free (which would let an engine bug masquerade as
/// an excellent extraction).
///
/// # Errors
/// Returns [`SelectionError::Missing`] if a reachable class has no selected
/// node, or [`SelectionError::Cyclic`] if the depth cost meets a cycle.
pub fn try_selection_cost(
    egraph: &EGraph<BoolLang>,
    selection: &Selection,
    roots: &[Id],
    cost_kind: ExtractionCost,
) -> Result<u64, SelectionError> {
    match cost_kind {
        ExtractionCost::Size => {
            // Count distinct gate classes reachable under the selection.
            let mut seen: egraph::FxHashSet<Id> = egraph::FxHashSet::default();
            let mut stack: Vec<Id> = roots.iter().map(|&r| egraph.find(r)).collect();
            let mut total = 0u64;
            while let Some(id) = stack.pop() {
                if !seen.insert(id) {
                    continue;
                }
                let node = selection.node(id).ok_or(SelectionError::Missing(id))?;
                total += node_cost(node);
                for &child in node.children() {
                    stack.push(egraph.find(child));
                }
            }
            Ok(total)
        }
        ExtractionCost::Depth => {
            // Two-color memo: `None` marks an in-progress class, so a back
            // edge surfaces as `Cyclic` instead of reading a guard value.
            let mut memo: FxHashMap<Id, Option<u64>> = FxHashMap::default();
            fn depth_of(
                egraph: &EGraph<BoolLang>,
                selection: &Selection,
                id: Id,
                memo: &mut FxHashMap<Id, Option<u64>>,
            ) -> Result<u64, SelectionError> {
                match memo.get(&id) {
                    Some(Some(d)) => return Ok(*d),
                    Some(None) => return Err(SelectionError::Cyclic(id)),
                    None => {}
                }
                memo.insert(id, None);
                let node = selection.node(id).ok_or(SelectionError::Missing(id))?;
                let mut child_max = 0u64;
                for &c in node.children() {
                    child_max = child_max.max(depth_of(egraph, selection, egraph.find(c), memo)?);
                }
                let d = child_max + node_cost(node);
                memo.insert(id, Some(d));
                Ok(d)
            }
            let mut best = 0u64;
            for &r in roots {
                best = best.max(depth_of(egraph, selection, egraph.find(r), &mut memo)?);
            }
            Ok(best)
        }
    }
}

/// Computes the structural cost of a selection at the given roots.
///
/// # Panics
/// Panics if a reachable class has no selected node or the selection is
/// cyclic; [`try_selection_cost`] reports the same conditions as a typed
/// [`SelectionError`] instead.
pub fn selection_cost(
    egraph: &EGraph<BoolLang>,
    selection: &Selection,
    roots: &[Id],
    cost_kind: ExtractionCost,
) -> u64 {
    #[allow(clippy::panic)] // the panic is the documented contract of this wrapper
    try_selection_cost(egraph, selection, roots, cost_kind).unwrap_or_else(|e| panic!("{e}"))
}

/// Test-only helper shared by the engine modules' unit tests.
#[cfg(test)]
pub(crate) mod test_util {
    use super::*;
    use crate::convert::aig_to_egraph;
    use crate::rules::all_rules;
    use egraph::{Runner, Scheduler};

    /// Converts and saturates a circuit with small-test knobs, returning the
    /// e-graph and canonical roots.
    pub(crate) fn saturated_egraph(aig: &aig::Aig, iters: usize) -> (EGraph<BoolLang>, Vec<Id>) {
        let conv = aig_to_egraph(aig);
        let runner = Runner::with_egraph(conv.egraph)
            .with_iter_limit(iters)
            .with_node_limit(20_000)
            .with_scheduler(Scheduler::Backoff {
                match_limit: 2_000,
                ban_length: 2,
            })
            .run(&all_rules());
        let roots = conv.roots.iter().map(|&r| runner.egraph.find(r)).collect();
        (runner.egraph, roots)
    }
}

#[cfg(test)]
mod tests {
    use super::test_util::saturated_egraph;
    use super::*;
    use crate::convert::aig_to_egraph;

    #[test]
    fn pruned_and_unpruned_agree_on_cost() {
        // Both algorithms compute the same per-class least fixpoint; under the
        // depth cost the resulting root cost is identical (the size cost is a
        // tree cost, so equally-optimal selections may differ in DAG sharing).
        let aig = benchgen::adder(4).aig;
        let (egraph, roots) = saturated_egraph(&aig, 3);
        let (sel_p, _, _) = bottom_up_with_costs(&egraph, ExtractionCost::Depth, true);
        let (sel_u, _, _) = bottom_up_with_costs(&egraph, ExtractionCost::Depth, false);
        let cost_p = selection_cost(&egraph, &sel_p, &roots, ExtractionCost::Depth);
        let cost_u = selection_cost(&egraph, &sel_u, &roots, ExtractionCost::Depth);
        assert_eq!(cost_p, cost_u);
    }

    #[test]
    fn pruning_reduces_evaluations() {
        let aig = benchgen::adder(5).aig;
        let (egraph, _roots) = saturated_egraph(&aig, 3);
        let (_, _, stats_p) = bottom_up_with_costs(&egraph, ExtractionCost::Size, true);
        let (_, _, stats_u) = bottom_up_with_costs(&egraph, ExtractionCost::Size, false);
        assert!(
            stats_p.nodes_evaluated < stats_u.nodes_evaluated,
            "pruned {} vs unpruned {}",
            stats_p.nodes_evaluated,
            stats_u.nodes_evaluated
        );
    }

    #[test]
    fn every_reachable_class_gets_a_choice() {
        let aig = benchgen::multiplier(3).aig;
        let (egraph, roots) = saturated_egraph(&aig, 2);
        let (selection, _) = bottom_up_extract(&egraph, ExtractionCost::Depth);
        // Walk the selection from the roots: every visited class has a node.
        let mut stack: Vec<Id> = roots.clone();
        let mut seen = egraph::FxHashSet::default();
        while let Some(id) = stack.pop() {
            let id = egraph.find(id);
            if !seen.insert(id) {
                continue;
            }
            let node = selection.node(id).expect("reachable class has a selection");
            for &c in node.children() {
                stack.push(c);
            }
        }
        assert!(!seen.is_empty());
    }

    #[test]
    fn depth_extraction_not_deeper_than_size_extraction() {
        let aig = benchgen::adder(6).aig;
        let (egraph, roots) = saturated_egraph(&aig, 4);
        let (sel_depth, _) = bottom_up_extract(&egraph, ExtractionCost::Depth);
        let (sel_size, _) = bottom_up_extract(&egraph, ExtractionCost::Size);
        let d_depth = selection_cost(&egraph, &sel_depth, &roots, ExtractionCost::Depth);
        let d_size = selection_cost(&egraph, &sel_size, &roots, ExtractionCost::Depth);
        assert!(d_depth <= d_size);
    }

    #[test]
    fn extraction_result_converts_to_equivalent_circuit() {
        let aig = benchgen::adder(4).aig;
        let conv = aig_to_egraph(&aig);
        let (egraph, roots) = saturated_egraph(&aig, 3);
        let (selection, _) = bottom_up_extract(&egraph, ExtractionCost::Size);
        let back = crate::convert::selection_to_aig(
            &egraph,
            &selection,
            &roots,
            &conv.input_names,
            &conv.output_names,
            "extracted",
        );
        for p in 0..(1usize << aig.num_inputs()) {
            let bits: Vec<bool> = (0..aig.num_inputs()).map(|i| p >> i & 1 == 1).collect();
            assert_eq!(aig.evaluate(&bits), back.evaluate(&bits), "pattern {p}");
        }
    }

    #[test]
    fn try_selection_cost_reports_missing_classes() {
        let aig = benchgen::adder(3).aig;
        let (egraph, roots) = saturated_egraph(&aig, 2);
        let empty = Selection {
            choices: FxHashMap::default(),
        };
        for kind in [ExtractionCost::Size, ExtractionCost::Depth] {
            let err = try_selection_cost(&egraph, &empty, &roots, kind).unwrap_err();
            assert!(matches!(err, SelectionError::Missing(_)), "{err}");
        }
        // A complete selection reports Ok and matches the panicking wrapper.
        let (selection, _) = bottom_up_extract(&egraph, ExtractionCost::Size);
        let ok = try_selection_cost(&egraph, &selection, &roots, ExtractionCost::Size).unwrap();
        assert_eq!(
            ok,
            selection_cost(&egraph, &selection, &roots, ExtractionCost::Size)
        );
    }
}
