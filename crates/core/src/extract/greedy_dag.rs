//! Greedy extraction under **true DAG cost**: shared subgraphs are charged
//! once, so the engine can undo the tree-cost DP's habit of picking locally
//! small nodes that duplicate logic globally.

use crate::extract::engine::{ExtractBudget, ExtractError, Extraction, ExtractionEngine};
use crate::extract::{bottom_up_with_costs, node_cost, ExtractStats, ExtractionCost, Selection};
use crate::lang::BoolLang;
use egraph::{EGraph, FxHashMap, FxHashSet, Id, Language};
use std::time::Instant;

/// Greedy DAG-cost refinement.
///
/// Starts from the exact tree-cost DP selection and repeatedly tries to
/// switch one class's chosen e-node to an alternative, keeping the switch iff
/// the number of **live gates** (distinct AND/OR classes reachable from the
/// roots) strictly decreases. Liveness is tracked incrementally with
/// reference counts, so each candidate costs O(touched subgraph) instead of
/// O(V).
///
/// Acyclicity is maintained by a height-admission rule: a candidate node is
/// only considered when every child's height (longest selection path to a
/// leaf, every edge counting) is strictly below the class's own height. A
/// hypothetical new cycle through the class would need a selection path from
/// a child back to the class, which would force the class's height below the
/// child's — contradicting the admission check — so no admissible switch can
/// create a cycle.
///
/// The refinement loop is deterministic (classes in sorted-id order, nodes in
/// class order) and *anytime*: an exhausted [`ExtractBudget`] simply stops
/// refinement, leaving a valid selection.
#[derive(Debug, Clone, Copy, Default)]
pub struct GlobalGreedyDagEngine;

impl GlobalGreedyDagEngine {
    /// Creates the engine (it has no knobs).
    pub fn new() -> Self {
        GlobalGreedyDagEngine
    }
}

/// Heights of every selected class: leaves are 0, every selection edge adds 1
/// (including through `Not`, which is free in gates but still an edge a cycle
/// could run through). The selection is acyclic by invariant; a cycle guard
/// still pins in-progress classes re-met by the DFS so a violated invariant
/// terminates (loudly, in debug builds) instead of hanging the walk.
fn selection_heights(
    egraph: &EGraph<BoolLang>,
    selection: &FxHashMap<Id, BoolLang>,
) -> FxHashMap<Id, u64> {
    let mut heights: FxHashMap<Id, u64> = FxHashMap::default();
    let mut open: FxHashSet<Id> = FxHashSet::default();
    let mut stack: Vec<(Id, bool)> = Vec::new();
    for &start in selection.keys() {
        stack.push((start, false));
        while let Some((id, ready)) = stack.pop() {
            if heights.contains_key(&id) {
                continue;
            }
            let Some(node) = selection.get(&id) else {
                // Unreferenced stale entry pointing outside the selection;
                // height 0 keeps it inert (it can never be admitted anyway).
                heights.insert(id, 0);
                continue;
            };
            if ready {
                open.remove(&id);
                let mut h = 0u64;
                for &c in node.children() {
                    h = h.max(1 + heights.get(&egraph.find(c)).copied().unwrap_or(0));
                }
                heights.insert(id, h);
            } else {
                if !open.insert(id) {
                    // Re-met while its own subtree is still being resolved:
                    // the selection contains a cycle through this class.
                    debug_assert!(false, "cycle in selection through class {id}");
                    heights.insert(id, 0);
                    continue;
                }
                stack.push((id, true));
                for &c in node.children() {
                    let c = egraph.find(c);
                    if !heights.contains_key(&c) {
                        stack.push((c, false));
                    }
                }
            }
        }
    }
    heights
}

/// Incremental liveness tracker over a selection: per-class reference counts
/// from the roots plus the running count of live gate classes.
struct Liveness {
    refs: FxHashMap<Id, u64>,
    live_gates: u64,
}

impl Liveness {
    fn new(egraph: &EGraph<BoolLang>, selection: &FxHashMap<Id, BoolLang>, roots: &[Id]) -> Self {
        let mut live = Liveness {
            refs: FxHashMap::default(),
            live_gates: 0,
        };
        for &root in roots {
            live.inc(egraph, selection, egraph.find(root));
        }
        live
    }

    /// Adds one reference to `id`, cascading into its children when the class
    /// becomes newly live.
    fn inc(&mut self, egraph: &EGraph<BoolLang>, selection: &FxHashMap<Id, BoolLang>, id: Id) {
        let mut stack = vec![id];
        while let Some(x) = stack.pop() {
            let count = self.refs.entry(x).or_insert(0);
            *count += 1;
            if *count == 1 {
                if let Some(node) = selection.get(&x) {
                    self.live_gates += node_cost(node);
                    for &c in node.children() {
                        stack.push(egraph.find(c));
                    }
                }
            }
        }
    }

    /// Removes one reference from `id`, cascading when the class dies.
    fn dec(&mut self, egraph: &EGraph<BoolLang>, selection: &FxHashMap<Id, BoolLang>, id: Id) {
        let mut stack = vec![id];
        while let Some(x) = stack.pop() {
            let count = self
                .refs
                .get_mut(&x)
                .unwrap_or_else(|| unreachable!("decrement of an unreferenced class"));
            *count -= 1;
            if *count == 0 {
                if let Some(node) = selection.get(&x) {
                    self.live_gates -= node_cost(node);
                    for &c in node.children() {
                        stack.push(egraph.find(c));
                    }
                }
            }
        }
    }

    fn is_live(&self, id: Id) -> bool {
        self.refs.get(&id).is_some_and(|&c| c > 0)
    }
}

impl ExtractionEngine for GlobalGreedyDagEngine {
    fn name(&self) -> &'static str {
        "global-greedy-dag"
    }

    fn extract(
        &self,
        egraph: &EGraph<BoolLang>,
        roots: &[Id],
        budget: &ExtractBudget,
    ) -> Result<Extraction, ExtractError> {
        let start = Instant::now();
        let (base, class_costs, base_stats) =
            bottom_up_with_costs(egraph, ExtractionCost::Size, true);
        let mut selection = base.choices;
        let roots: Vec<Id> = roots.iter().map(|&r| egraph.find(r)).collect();
        for &root in &roots {
            if !selection.contains_key(&root) {
                return Err(ExtractError::Unrealizable(root));
            }
        }

        let mut stats = ExtractStats {
            nodes_evaluated: base_stats.nodes_evaluated,
            improvements: 0,
            runtime: Default::default(),
        };
        let mut heights = selection_heights(egraph, &selection);
        let mut live = Liveness::new(egraph, &selection, &roots);
        let class_order = egraph.class_ids_sorted();

        // Each accepted switch strictly decreases `live_gates` (a nonnegative
        // integer), so the refinement terminates; the loop ends at the first
        // full pass with no accepted switch or when the budget runs out.
        let mut evaluations = 0u64;
        'refine: loop {
            let mut accepted_this_pass = false;
            for &class_id in &class_order {
                if !live.is_live(class_id) || !selection.contains_key(&class_id) {
                    continue;
                }
                for node in &egraph.class(class_id).nodes {
                    if evaluations.is_multiple_of(256) && budget.exhausted(evaluations, start) {
                        break 'refine;
                    }
                    evaluations += 1;
                    stats.nodes_evaluated += 1;

                    let current = &selection[&class_id];
                    if node == current {
                        continue;
                    }
                    // Height admission: every child must sit strictly below
                    // this class, and be realizable at all. The class's own
                    // height must be re-read for every candidate: an accepted
                    // switch for an earlier node of this same class recomputes
                    // all heights and can *lower* this class's height, and
                    // admitting against the stale larger value would let a
                    // child whose selection path reaches back here slip
                    // through, creating a cycle.
                    let class_height = heights.get(&class_id).copied().unwrap_or(0);
                    let admissible = node.children().iter().all(|&c| {
                        let c = egraph.find(c);
                        selection.contains_key(&c)
                            && heights.get(&c).is_some_and(|&ch| ch < class_height)
                    });
                    if !admissible {
                        continue;
                    }

                    // Tentatively switch and measure the live-gate delta.
                    let before = live.live_gates;
                    let old = selection
                        .insert(class_id, node.clone())
                        .unwrap_or_else(|| unreachable!("class was selected"));
                    live.live_gates += node_cost(node);
                    live.live_gates -= node_cost(&old);
                    for &c in node.children() {
                        live.inc(egraph, &selection, egraph.find(c));
                    }
                    for &c in old.children() {
                        live.dec(egraph, &selection, egraph.find(c));
                    }

                    if live.live_gates < before {
                        stats.improvements += 1;
                        accepted_this_pass = true;
                        heights = selection_heights(egraph, &selection);
                    } else {
                        // Revert exactly: put the old node back and undo the
                        // reference-count changes in reverse.
                        for &c in node.children() {
                            live.dec(egraph, &selection, egraph.find(c));
                        }
                        let node_back = selection
                            .insert(class_id, old)
                            .unwrap_or_else(|| unreachable!("class still selected"));
                        let old = &selection[&class_id];
                        live.live_gates += node_cost(old);
                        live.live_gates -= node_cost(&node_back);
                        for &c in old.children() {
                            live.inc(egraph, &selection, egraph.find(c));
                        }
                        debug_assert_eq!(live.live_gates, before, "revert must be exact");
                    }
                }
            }
            if !accepted_this_pass {
                break;
            }
        }

        stats.runtime = start.elapsed();
        Ok(Extraction {
            selection: Selection { choices: selection },
            class_costs,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::test_util::saturated_egraph;
    use crate::extract::{try_selection_cost, BottomUpEngine};

    #[test]
    fn dag_cost_not_worse_than_tree_cost_selection() {
        for (name, aig, iters) in [
            ("adder", benchgen::adder(5).aig, 3),
            ("mult", benchgen::multiplier(3).aig, 2),
        ] {
            let (egraph, roots) = saturated_egraph(&aig, iters);
            let budget = ExtractBudget::unlimited();
            let tree = BottomUpEngine::new(ExtractionCost::Size)
                .extract(&egraph, &roots, &budget)
                .unwrap();
            let dag = GlobalGreedyDagEngine::new()
                .extract(&egraph, &roots, &budget)
                .unwrap();
            let tree_size =
                try_selection_cost(&egraph, &tree.selection, &roots, ExtractionCost::Size).unwrap();
            let dag_size =
                try_selection_cost(&egraph, &dag.selection, &roots, ExtractionCost::Size).unwrap();
            assert!(
                dag_size <= tree_size,
                "{name}: dag {dag_size} vs tree {tree_size}"
            );
        }
    }

    #[test]
    fn selection_stays_acyclic_and_complete() {
        let aig = benchgen::multiplier(3).aig;
        let (egraph, roots) = saturated_egraph(&aig, 2);
        let extraction = GlobalGreedyDagEngine::new()
            .extract(&egraph, &roots, &ExtractBudget::unlimited())
            .unwrap();
        // try_selection_cost(Depth) walks with cycle detection: Ok proves the
        // refined selection is still complete and acyclic from the roots.
        try_selection_cost(
            &egraph,
            &extraction.selection,
            &roots,
            ExtractionCost::Depth,
        )
        .unwrap();
    }

    #[test]
    fn extraction_is_equivalent_to_input() {
        let aig = benchgen::adder(4).aig;
        let conv = crate::convert::aig_to_egraph(&aig);
        let (egraph, roots) = saturated_egraph(&aig, 3);
        let extraction = GlobalGreedyDagEngine::new()
            .extract(&egraph, &roots, &ExtractBudget::unlimited())
            .unwrap();
        let back = crate::convert::try_selection_to_aig(
            &egraph,
            &extraction.selection,
            &roots,
            &conv.input_names,
            &conv.output_names,
            "greedy-dag",
        )
        .unwrap();
        for p in 0..(1usize << aig.num_inputs()) {
            let bits: Vec<bool> = (0..aig.num_inputs()).map(|i| p >> i & 1 == 1).collect();
            assert_eq!(aig.evaluate(&bits), back.evaluate(&bits), "pattern {p}");
        }
    }

    #[test]
    fn exhausted_budget_still_yields_a_valid_selection() {
        let aig = benchgen::adder(5).aig;
        let (egraph, roots) = saturated_egraph(&aig, 3);
        let tight = ExtractBudget::unlimited().with_max_evaluations(1);
        let extraction = GlobalGreedyDagEngine::new()
            .extract(&egraph, &roots, &tight)
            .unwrap();
        try_selection_cost(&egraph, &extraction.selection, &roots, ExtractionCost::Size).unwrap();
    }

    /// Regression: the per-class height must be re-read after an accepted
    /// switch. This e-graph is built so the tree DP picks a tall node for
    /// class `C` (height 6), the greedy pass first accepts a short
    /// alternative (dropping `C`'s height to 4), and a later alternative of
    /// `C` has child `D = And(C, x)` whose recomputed height (5) sits below
    /// the stale 6 but above the fresh 4. Admitting it against the stale
    /// height created the cycle `C -> D -> C` and hung `selection_heights`.
    #[test]
    fn stale_class_height_cannot_admit_a_cycle() {
        let mut eg: EGraph<BoolLang> = EGraph::new();
        let x = eg.add(BoolLang::Var(0));
        let y = eg.add(BoolLang::Var(1));
        // Tall AND chain (tree size 5, height 5), reachable only through
        // `C`'s DP pick.
        let mut a = eg.add(BoolLang::and(x, y));
        for _ in 0..4 {
            a = eg.add(BoolLang::and(a, y));
        }
        // Short OR chain (tree size 3, height 3): the first alternative.
        let mut m = eg.add(BoolLang::or(x, y));
        for _ in 0..2 {
            m = eg.add(BoolLang::or(m, y));
        }
        // Class C: DP picks `And(a, x)` (tree cost 6 < 7); `And(m, m)` is the
        // greedy's first accepted switch (kills the 5-gate chain, adds 3).
        let c = eg.add(BoolLang::and(a, x));
        let c1 = eg.add(BoolLang::and(m, m));
        eg.union(c, c1);
        eg.rebuild();
        // D sits above C; the root keeps D (and through it C) live.
        let d = eg.add(BoolLang::and(eg.find(c), x));
        let root = eg.add(BoolLang::or(d, x));
        // The poisoned alternative: switching C to `And(d, x)` closes the
        // cycle C -> D -> C.
        let c2 = eg.add(BoolLang::and(d, x));
        eg.union(c, c2);
        eg.rebuild();

        let roots = vec![eg.find(root)];
        let (tree, _) = crate::extract::bottom_up_extract(&eg, ExtractionCost::Size);
        let tree_size = try_selection_cost(&eg, &tree, &roots, ExtractionCost::Size).unwrap();
        let extraction = GlobalGreedyDagEngine::new()
            .extract(&eg, &roots, &ExtractBudget::unlimited())
            .unwrap();
        // Depth walks with cycle detection: Ok proves acyclicity.
        try_selection_cost(&eg, &extraction.selection, &roots, ExtractionCost::Depth).unwrap();
        let dag_size =
            try_selection_cost(&eg, &extraction.selection, &roots, ExtractionCost::Size).unwrap();
        assert!(dag_size <= tree_size, "dag {dag_size} vs tree {tree_size}");
    }

    /// The height walk's cycle guard terminates (and trips in debug builds)
    /// on a cyclic selection instead of spinning forever.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "cycle in selection")]
    fn selection_heights_flags_a_cyclic_selection() {
        let mut eg: EGraph<BoolLang> = EGraph::new();
        let x = eg.add(BoolLang::Var(0));
        let p = eg.add(BoolLang::and(x, x));
        let q = eg.add(BoolLang::and(p, x));
        eg.rebuild();
        let mut selection: FxHashMap<Id, BoolLang> = FxHashMap::default();
        selection.insert(p, BoolLang::and(q, q));
        selection.insert(q, BoolLang::and(p, p));
        selection_heights(&eg, &selection);
    }

    #[test]
    fn deterministic_across_runs() {
        let aig = benchgen::adder(5).aig;
        let (egraph, roots) = saturated_egraph(&aig, 3);
        let budget = ExtractBudget::unlimited();
        let a = GlobalGreedyDagEngine::new()
            .extract(&egraph, &roots, &budget)
            .unwrap();
        let b = GlobalGreedyDagEngine::new()
            .extract(&egraph, &roots, &budget)
            .unwrap();
        assert_eq!(a.selection.choices, b.selection.choices);
        assert_eq!(a.stats.nodes_evaluated, b.stats.nodes_evaluated);
        assert_eq!(a.stats.improvements, b.stats.improvements);
    }
}
