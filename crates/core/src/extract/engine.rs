//! The [`ExtractionEngine`] trait: one API over every way of pulling a
//! concrete design out of the saturated e-space, plus the deterministic
//! [`PortfolioEngine`] that races several engines in parallel.

use crate::extract::{
    bottom_up_with_costs, try_selection_cost, ExtractStats, ExtractionCost, Selection,
};
use crate::lang::BoolLang;
use egraph::{EGraph, FxHashMap, Id, SelectionError};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use techmap::cell::map_to_cells;
use techmap::library::CellLibrary;
use techmap::MapOptions;

/// Work limits handed to an engine.
///
/// `max_evaluations` is expressed in abstract work units (candidate e-node
/// evaluations), so a budgeted run is **deterministic** — the same budget
/// always cuts the search at the same point regardless of machine speed.
/// `time_limit` is a coarse wall-clock backstop; setting it trades that
/// determinism for predictability of the wall time. Engines are *anytime*:
/// refinement engines start from a complete bottom-up base selection, so an
/// exhausted budget yields a valid (merely less optimized) extraction, never
/// an error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExtractBudget {
    /// Maximum candidate evaluations (`None` = unlimited).
    pub max_evaluations: Option<u64>,
    /// Wall-clock backstop, checked coarsely (`None` = unlimited). Using it
    /// makes budgeted results machine-dependent.
    pub time_limit: Option<Duration>,
}

impl ExtractBudget {
    /// No limits: every engine runs to its natural fixpoint.
    pub fn unlimited() -> Self {
        ExtractBudget::default()
    }

    /// Caps candidate evaluations (deterministic work-unit budget).
    #[must_use]
    pub fn with_max_evaluations(mut self, max: u64) -> Self {
        self.max_evaluations = Some(max);
        self
    }

    /// Adds a coarse wall-clock backstop (trades determinism for wall time).
    #[must_use]
    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.time_limit = Some(limit);
        self
    }

    /// Returns `true` once `evaluations` work units exhaust the budget or the
    /// elapsed time passes the backstop (checked by the caller at a coarse
    /// granularity).
    pub(crate) fn exhausted(&self, evaluations: u64, started: Instant) -> bool {
        if self.max_evaluations.is_some_and(|max| evaluations >= max) {
            return true;
        }
        self.time_limit
            .is_some_and(|limit| started.elapsed() >= limit)
    }
}

/// Why an extraction failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExtractError {
    /// A root class has no realizable term (no finite-cost selection).
    Unrealizable(Id),
    /// The produced selection was incomplete or cyclic (an engine bug
    /// surfaced by the checked cost/conversion paths).
    Selection(SelectionError),
    /// A portfolio was run with no member engines.
    NoEngines,
    /// Every portfolio member failed; the message lists the per-engine
    /// errors.
    AllEnginesFailed(String),
}

impl std::fmt::Display for ExtractError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExtractError::Unrealizable(id) => {
                write!(f, "root class {id} has no realizable term")
            }
            ExtractError::Selection(e) => write!(f, "invalid selection: {e}"),
            ExtractError::NoEngines => write!(f, "portfolio has no engines"),
            ExtractError::AllEnginesFailed(msg) => {
                write!(f, "every portfolio engine failed: {msg}")
            }
        }
    }
}

impl std::error::Error for ExtractError {}

impl From<SelectionError> for ExtractError {
    fn from(e: SelectionError) -> Self {
        ExtractError::Selection(e)
    }
}

/// The result of one engine run: a complete per-class selection, a per-class
/// cost map (the metric the engine optimized, used e.g. to rank choice-class
/// members), and run statistics.
#[derive(Debug, Clone)]
pub struct Extraction {
    /// One chosen e-node per realizable class; complete and acyclic over
    /// every class reachable from the roots.
    pub selection: Selection,
    /// Per-class cost under the engine's metric (tree size, arrival depth,
    /// ...). Keys cover at least every class in `selection`.
    pub class_costs: FxHashMap<Id, u64>,
    /// Work and timing statistics.
    pub stats: ExtractStats,
}

/// One way of extracting a concrete design from a saturated e-graph.
///
/// Implementations must be deterministic for a fixed input and budget, and
/// `Send + Sync` so a [`PortfolioEngine`] can race them on scoped threads.
///
/// # Implementing a custom engine
///
/// An engine only has to produce a complete, acyclic [`Selection`] for every
/// class reachable from the roots. The simplest way is to start from the
/// exact bottom-up DP and post-process it:
///
/// ```
/// use egraph::{EGraph, Id};
/// use emorphic::extract::{
///     BottomUpEngine, ExtractBudget, ExtractError, Extraction, ExtractionCost, ExtractionEngine,
/// };
/// use emorphic::BoolLang;
///
/// /// Prefers the depth-optimal selection but reports tree-size class costs,
/// /// so choice ranking favors small alternatives of a depth-held base.
/// struct DepthBaseSizeRank;
///
/// impl ExtractionEngine for DepthBaseSizeRank {
///     fn name(&self) -> &'static str {
///         "depth-base-size-rank"
///     }
///
///     fn extract(
///         &self,
///         egraph: &EGraph<BoolLang>,
///         roots: &[Id],
///         budget: &ExtractBudget,
///     ) -> Result<Extraction, ExtractError> {
///         let depth = BottomUpEngine::new(ExtractionCost::Depth).extract(egraph, roots, budget)?;
///         let size = BottomUpEngine::new(ExtractionCost::Size).extract(egraph, roots, budget)?;
///         Ok(Extraction {
///             selection: depth.selection,
///             class_costs: size.class_costs,
///             stats: depth.stats,
///         })
///     }
/// }
///
/// let conv = emorphic::aig_to_egraph(&benchgen::adder(3).aig);
/// let result = DepthBaseSizeRank
///     .extract(&conv.egraph, &conv.roots, &ExtractBudget::unlimited())
///     .unwrap();
/// assert!(result.selection.node(conv.roots[0]).is_some());
/// ```
pub trait ExtractionEngine: Send + Sync {
    /// Short stable name used in reports and stats.
    fn name(&self) -> &'static str;

    /// Extracts one design from `egraph` rooted at `roots` under `budget`.
    ///
    /// # Errors
    /// Returns an [`ExtractError`] if a root is unrealizable or the engine
    /// cannot produce a complete selection.
    fn extract(
        &self,
        egraph: &EGraph<BoolLang>,
        roots: &[Id],
        budget: &ExtractBudget,
    ) -> Result<Extraction, ExtractError>;
}

/// Which engine a flow uses (see `FlowConfig::extractor` and
/// `MapFlowConfig::extractor`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExtractorKind {
    /// The simulated-annealing extractor guided by the flow's cost model
    /// (the paper's Algorithm 1; the historical default of `emorphic_flow`).
    #[default]
    Sa,
    /// Exact bottom-up DP minimizing tree size.
    BottomUp,
    /// Greedy refinement under true DAG cost (shared subgraphs charged once).
    GlobalGreedyDag,
    /// Depth-held, slack-driven area recovery.
    SlackAware,
    /// All of the above raced in parallel, best QoR wins deterministically.
    Portfolio,
}

/// Per-engine outcome of a (portfolio) run.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Engine name.
    pub engine: String,
    /// DAG gate count of the engine's selection (0 when the engine failed or
    /// its selection could not be scored — `error` says why).
    pub size_cost: u64,
    /// Gate depth of the engine's selection (0 when the engine failed or its
    /// selection could not be scored — `error` says why).
    pub depth_cost: u64,
    /// The engine's own statistics.
    pub stats: ExtractStats,
    /// Whether this engine's result was kept.
    pub won: bool,
    /// The error message when the engine failed.
    pub error: Option<String>,
}

/// Builds the report row for a single (non-portfolio) engine run.
pub(crate) fn report_for(
    egraph: &EGraph<BoolLang>,
    roots: &[Id],
    name: &str,
    result: &Result<Extraction, ExtractError>,
    won: bool,
) -> EngineReport {
    match result {
        Ok(extraction) => {
            let size =
                try_selection_cost(egraph, &extraction.selection, roots, ExtractionCost::Size);
            let depth =
                try_selection_cost(egraph, &extraction.selection, roots, ExtractionCost::Depth);
            // An Ok result whose selection cannot be scored (incomplete or
            // cyclic — an engine bug) must not masquerade as a perfect
            // zero-cost extraction: surface the scoring failure as the
            // report's error.
            let error = match (&size, &depth) {
                (Err(e), _) | (_, Err(e)) => Some(format!("selection could not be scored: {e}")),
                _ => None,
            };
            EngineReport {
                engine: name.to_string(),
                size_cost: size.unwrap_or(0),
                depth_cost: depth.unwrap_or(0),
                stats: extraction.stats,
                won,
                error,
            }
        }
        Err(e) => EngineReport {
            engine: name.to_string(),
            size_cost: 0,
            depth_cost: 0,
            stats: ExtractStats::default(),
            won: false,
            error: Some(e.to_string()),
        },
    }
}

/// Exact bottom-up extraction: the greedy DP over a structural tree cost,
/// with solution-space pruning on (worklist) or off (fixpoint sweeps).
///
/// This engine ignores the budget: it is the cheap base every other engine
/// refines from, and a partial DP would not be a valid selection.
#[derive(Debug, Clone, Copy)]
pub struct BottomUpEngine {
    cost: ExtractionCost,
    pruned: bool,
}

impl BottomUpEngine {
    /// An engine minimizing the given structural cost, with pruning on.
    pub fn new(cost: ExtractionCost) -> Self {
        BottomUpEngine { cost, pruned: true }
    }

    /// Toggles solution-space pruning (`false` selects the naive fixpoint
    /// sweeps the Fig. 6 ablation contrasts against; same selection costs,
    /// many more node evaluations).
    #[must_use]
    pub fn with_pruning(mut self, pruned: bool) -> Self {
        self.pruned = pruned;
        self
    }
}

impl ExtractionEngine for BottomUpEngine {
    fn name(&self) -> &'static str {
        match (self.cost, self.pruned) {
            (ExtractionCost::Size, true) => "bottom-up-size",
            (ExtractionCost::Depth, true) => "bottom-up-depth",
            (ExtractionCost::Size, false) => "bottom-up-size-unpruned",
            (ExtractionCost::Depth, false) => "bottom-up-depth-unpruned",
        }
    }

    fn extract(
        &self,
        egraph: &EGraph<BoolLang>,
        roots: &[Id],
        _budget: &ExtractBudget,
    ) -> Result<Extraction, ExtractError> {
        let start = Instant::now();
        let (selection, class_costs, mut stats) =
            bottom_up_with_costs(egraph, self.cost, self.pruned);
        for &root in roots {
            let root = egraph.find(root);
            if !selection.choices.contains_key(&root) {
                return Err(ExtractError::Unrealizable(root));
            }
        }
        stats.runtime = start.elapsed();
        Ok(Extraction {
            selection,
            class_costs,
            stats,
        })
    }
}

/// How a [`PortfolioEngine`] scores candidate extractions.
#[derive(Debug, Clone)]
pub enum PortfolioScorer {
    /// Structural score: `(primary, secondary)` = (the given cost, the other
    /// one). Cheap and fully deterministic.
    Structural(ExtractionCost),
    /// Technology-mapped score: each candidate is rebuilt as an AIG
    /// (synthetic port names; mapping ignores names) and mapped against the
    /// library. `delay_first` picks `(delay, area)` vs `(area, delay)`.
    Mapped {
        /// The standard-cell library to map against.
        library: CellLibrary,
        /// `true` scores `(delay_ps, area_um2)`, `false` `(area_um2,
        /// delay_ps)`.
        delay_first: bool,
    },
}

impl PortfolioScorer {
    /// Scores one extraction as a `(primary, secondary)` pair (lower wins).
    fn score(
        &self,
        egraph: &EGraph<BoolLang>,
        roots: &[Id],
        extraction: &Extraction,
    ) -> Result<(f64, f64), ExtractError> {
        match self {
            PortfolioScorer::Structural(primary) => {
                let size =
                    try_selection_cost(egraph, &extraction.selection, roots, ExtractionCost::Size)?;
                let depth = try_selection_cost(
                    egraph,
                    &extraction.selection,
                    roots,
                    ExtractionCost::Depth,
                )?;
                Ok(match primary {
                    ExtractionCost::Size => (size as f64, depth as f64),
                    ExtractionCost::Depth => (depth as f64, size as f64),
                })
            }
            PortfolioScorer::Mapped {
                library,
                delay_first,
            } => {
                let aig = selection_to_named_aig(egraph, roots, &extraction.selection)?;
                let qor = map_to_cells(&aig, library, &MapOptions::default()).qor();
                Ok(if *delay_first {
                    (qor.delay_ps, qor.area_um2)
                } else {
                    (qor.area_um2, qor.delay_ps)
                })
            }
        }
    }
}

/// Rebuilds a selection as an AIG with synthesized port names (`x<i>` inputs
/// covering every `Var` index in the e-graph, `o<k>` outputs), for scoring
/// purposes where names are irrelevant.
pub(crate) fn selection_to_named_aig(
    egraph: &EGraph<BoolLang>,
    roots: &[Id],
    selection: &Selection,
) -> Result<aig::Aig, ExtractError> {
    let (input_names, output_names) = synthetic_names(egraph, roots.len());
    crate::convert::try_selection_to_aig(
        egraph,
        selection,
        roots,
        &input_names,
        &output_names,
        "extracted",
    )
    .map_err(ExtractError::from)
}

/// Synthesizes `x0..xN` input names (covering the largest `Var` index in the
/// e-graph) and `o0..oK` output names.
pub(crate) fn synthetic_names(
    egraph: &EGraph<BoolLang>,
    num_outputs: usize,
) -> (Vec<String>, Vec<String>) {
    let num_inputs = egraph
        .classes()
        .flat_map(|class| class.nodes.iter())
        .filter_map(|node| match node {
            BoolLang::Var(i) => Some(*i as usize + 1),
            _ => None,
        })
        .max()
        .unwrap_or(0);
    let input_names = (0..num_inputs).map(|i| format!("x{i}")).collect();
    let output_names = (0..num_outputs).map(|k| format!("o{k}")).collect();
    (input_names, output_names)
}

/// Races a set of engines in parallel on scoped threads and keeps the best
/// result.
///
/// The winner is picked **deterministically**: every engine runs to
/// completion under its budget, all successful results are scored with the
/// configured [`PortfolioScorer`], and the lowest `(primary, secondary,
/// engine index)` triple wins — so the fixed engine order breaks exact ties
/// and the outcome is bit-identical at any thread count.
pub struct PortfolioEngine {
    engines: Vec<Box<dyn ExtractionEngine>>,
    threads: usize,
    scorer: PortfolioScorer,
}

impl PortfolioEngine {
    /// A portfolio over the given engines, scored structurally by size and
    /// racing one thread per engine.
    pub fn new(engines: Vec<Box<dyn ExtractionEngine>>) -> Self {
        let threads = engines.len().max(1);
        PortfolioEngine {
            engines,
            threads,
            scorer: PortfolioScorer::Structural(ExtractionCost::Size),
        }
    }

    /// Sets the number of worker threads (results are identical for every
    /// value; only wall-clock time changes).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the candidate scorer.
    #[must_use]
    pub fn with_scorer(mut self, scorer: PortfolioScorer) -> Self {
        self.scorer = scorer;
        self
    }

    /// Number of member engines.
    pub fn num_engines(&self) -> usize {
        self.engines.len()
    }

    /// Runs every engine under `budget` and returns the winning extraction
    /// plus one report per engine (in engine order).
    ///
    /// # Errors
    /// Returns [`ExtractError::NoEngines`] for an empty portfolio and
    /// [`ExtractError::AllEnginesFailed`] when no engine produced a result.
    pub fn extract_with_reports(
        &self,
        egraph: &EGraph<BoolLang>,
        roots: &[Id],
        budget: &ExtractBudget,
    ) -> Result<(Extraction, Vec<EngineReport>), ExtractError> {
        if self.engines.is_empty() {
            return Err(ExtractError::NoEngines);
        }

        // PR-3 worker-pool pattern: scoped threads pull engine indices from a
        // shared atomic counter; results land in their slot, so the outcome
        // is independent of scheduling.
        let slots: Vec<Mutex<Option<Result<Extraction, ExtractError>>>> =
            (0..self.engines.len()).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = self.threads.min(self.engines.len()).max(1);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= self.engines.len() {
                        break;
                    }
                    let result = self.engines[index].extract(egraph, roots, budget);
                    match slots[index].lock() {
                        Ok(mut slot) => *slot = Some(result),
                        Err(poisoned) => *poisoned.into_inner() = Some(result),
                    }
                });
            }
        });
        let results: Vec<Result<Extraction, ExtractError>> = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .unwrap_or_else(|| unreachable!("every engine index was processed"))
            })
            .collect();

        // Deterministic selection: score successes, lowest
        // (primary, secondary, engine index) wins.
        let mut winner: Option<(usize, (f64, f64))> = None;
        let mut scored: Vec<Option<(f64, f64)>> = Vec::with_capacity(results.len());
        for (index, result) in results.iter().enumerate() {
            let score = match result {
                Ok(extraction) => self.score_or_none(egraph, roots, extraction),
                Err(_) => None,
            };
            if let Some(score) = score {
                let better = match &winner {
                    None => true,
                    // Strict comparison: ties keep the earlier engine.
                    Some((_, best)) => score < *best,
                };
                if better {
                    winner = Some((index, score));
                }
            }
            scored.push(score);
        }

        let Some((winner_index, _)) = winner else {
            let errors: Vec<String> = results
                .iter()
                .enumerate()
                .map(|(i, r)| match r {
                    Ok(_) => format!("{}: unscorable selection", self.engines[i].name()),
                    Err(e) => format!("{}: {e}", self.engines[i].name()),
                })
                .collect();
            return Err(ExtractError::AllEnginesFailed(errors.join("; ")));
        };

        let reports: Vec<EngineReport> = results
            .iter()
            .enumerate()
            .map(|(i, result)| {
                let mut report = report_for(
                    egraph,
                    roots,
                    self.engines[i].name(),
                    result,
                    i == winner_index,
                );
                // `report_for` already flags structurally unscorable
                // selections; this additionally covers scorer-specific
                // failures (e.g. a mapped score over a valid selection).
                if result.is_ok() && scored[i].is_none() && report.error.is_none() {
                    report.error = Some("selection could not be scored".to_string());
                }
                report
            })
            .collect();

        let mut results = results;
        let extraction = results
            .swap_remove(winner_index)
            .unwrap_or_else(|_| unreachable!("winner was a successful result"));
        Ok((extraction, reports))
    }

    /// Scores an extraction, folding score errors (incomplete selection) into
    /// `None` so a buggy engine loses instead of sinking the portfolio.
    fn score_or_none(
        &self,
        egraph: &EGraph<BoolLang>,
        roots: &[Id],
        extraction: &Extraction,
    ) -> Option<(f64, f64)> {
        self.scorer.score(egraph, roots, extraction).ok()
    }
}

impl std::fmt::Debug for PortfolioEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PortfolioEngine")
            .field(
                "engines",
                &self.engines.iter().map(|e| e.name()).collect::<Vec<_>>(),
            )
            .field("threads", &self.threads)
            .field("scorer", &self.scorer)
            .finish()
    }
}

impl ExtractionEngine for PortfolioEngine {
    fn name(&self) -> &'static str {
        "portfolio"
    }

    fn extract(
        &self,
        egraph: &EGraph<BoolLang>,
        roots: &[Id],
        budget: &ExtractBudget,
    ) -> Result<Extraction, ExtractError> {
        self.extract_with_reports(egraph, roots, budget)
            .map(|(extraction, _)| extraction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::test_util::saturated_egraph;
    use crate::extract::{GlobalGreedyDagEngine, SlackAwareEngine};

    fn default_portfolio() -> PortfolioEngine {
        PortfolioEngine::new(vec![
            Box::new(BottomUpEngine::new(ExtractionCost::Size)),
            Box::new(BottomUpEngine::new(ExtractionCost::Depth)),
            Box::new(GlobalGreedyDagEngine::new()),
            Box::new(SlackAwareEngine::new()),
        ])
    }

    #[test]
    fn bottom_up_engine_matches_free_function() {
        let aig = benchgen::adder(4).aig;
        let (egraph, roots) = saturated_egraph(&aig, 3);
        let engine = BottomUpEngine::new(ExtractionCost::Size);
        let extraction = engine
            .extract(&egraph, &roots, &ExtractBudget::unlimited())
            .unwrap();
        let (free, _) = crate::extract::bottom_up_extract(&egraph, ExtractionCost::Size);
        assert_eq!(extraction.selection.choices, free.choices);
        // The cost map covers the selection and runtime was measured.
        for id in extraction.selection.choices.keys() {
            assert!(extraction.class_costs.contains_key(id));
        }
        assert!(extraction.stats.nodes_evaluated > 0);
    }

    #[test]
    fn pruned_and_unpruned_engines_agree_on_root_cost() {
        let aig = benchgen::adder(4).aig;
        let (egraph, roots) = saturated_egraph(&aig, 3);
        let budget = ExtractBudget::unlimited();
        let pruned = BottomUpEngine::new(ExtractionCost::Depth)
            .extract(&egraph, &roots, &budget)
            .unwrap();
        let unpruned = BottomUpEngine::new(ExtractionCost::Depth)
            .with_pruning(false)
            .extract(&egraph, &roots, &budget)
            .unwrap();
        let d_p =
            try_selection_cost(&egraph, &pruned.selection, &roots, ExtractionCost::Depth).unwrap();
        let d_u = try_selection_cost(&egraph, &unpruned.selection, &roots, ExtractionCost::Depth)
            .unwrap();
        assert_eq!(d_p, d_u);
        assert!(pruned.stats.nodes_evaluated <= unpruned.stats.nodes_evaluated);
    }

    #[test]
    fn report_flags_ok_but_unscorable_extraction() {
        let aig = benchgen::adder(3).aig;
        let (egraph, roots) = saturated_egraph(&aig, 2);
        // An engine-bug shape: Ok result with an empty (incomplete) selection.
        let broken = Extraction {
            selection: Selection {
                choices: FxHashMap::default(),
            },
            class_costs: FxHashMap::default(),
            stats: ExtractStats::default(),
        };
        let report = report_for(&egraph, &roots, "broken", &Ok(broken), true);
        assert!(
            report
                .error
                .as_deref()
                .is_some_and(|e| e.contains("could not be scored")),
            "scoring failure must be surfaced, got {:?}",
            report.error
        );
        assert_eq!(report.size_cost, 0);
        assert_eq!(report.depth_cost, 0);
    }

    #[test]
    fn extract_errors_format_usefully() {
        let missing = ExtractError::Selection(SelectionError::Missing(egraph::Id(3)));
        assert!(missing.to_string().contains("invalid selection"));
        assert!(ExtractError::NoEngines.to_string().contains("no engines"));
        let unrealizable = ExtractError::Unrealizable(egraph::Id(7));
        assert!(unrealizable.to_string().contains("no realizable term"));
    }

    #[test]
    fn portfolio_is_deterministic_across_thread_counts() {
        let aig = benchgen::adder(5).aig;
        let (egraph, roots) = saturated_egraph(&aig, 3);
        let budget = ExtractBudget::unlimited();
        let serial = default_portfolio()
            .with_threads(1)
            .extract_with_reports(&egraph, &roots, &budget)
            .unwrap();
        let parallel = default_portfolio()
            .with_threads(4)
            .extract_with_reports(&egraph, &roots, &budget)
            .unwrap();
        assert_eq!(serial.0.selection.choices, parallel.0.selection.choices);
        let winner = |reports: &[EngineReport]| {
            reports
                .iter()
                .find(|r| r.won)
                .map(|r| r.engine.clone())
                .unwrap()
        };
        assert_eq!(winner(&serial.1), winner(&parallel.1));
    }

    #[test]
    fn portfolio_never_worse_than_any_member_on_the_score() {
        let aig = benchgen::adder(5).aig;
        let (egraph, roots) = saturated_egraph(&aig, 3);
        let budget = ExtractBudget::unlimited();
        let portfolio = default_portfolio();
        let (best, reports) = portfolio
            .extract_with_reports(&egraph, &roots, &budget)
            .unwrap();
        let best_size =
            try_selection_cost(&egraph, &best.selection, &roots, ExtractionCost::Size).unwrap();
        for report in &reports {
            assert!(
                report.error.is_none(),
                "{}: {:?}",
                report.engine,
                report.error
            );
            assert!(
                best_size <= report.size_cost
                    || reports.iter().any(|r| r.won && r.size_cost == best_size),
                "portfolio size {best_size} vs {} from {}",
                report.size_cost,
                report.engine
            );
            assert!(best_size <= report.size_cost, "size scorer picks the min");
        }
        assert_eq!(reports.iter().filter(|r| r.won).count(), 1);
    }

    #[test]
    fn empty_portfolio_is_an_error() {
        let aig = benchgen::adder(3).aig;
        let (egraph, roots) = saturated_egraph(&aig, 2);
        let err = PortfolioEngine::new(Vec::new())
            .extract(&egraph, &roots, &ExtractBudget::unlimited())
            .unwrap_err();
        assert!(matches!(err, ExtractError::NoEngines));
    }

    #[test]
    fn budget_builders_compose() {
        let budget = ExtractBudget::unlimited()
            .with_max_evaluations(100)
            .with_time_limit(Duration::from_secs(1));
        assert_eq!(budget.max_evaluations, Some(100));
        assert_eq!(budget.time_limit, Some(Duration::from_secs(1)));
        assert!(budget.exhausted(100, Instant::now()));
        assert!(!budget.exhausted(99, Instant::now()));
    }
}
