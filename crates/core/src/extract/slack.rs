//! Depth-held, slack-driven extraction: keep the unit-delay critical depth
//! the PR-5 timing work optimizes for, and spend every class's slack on
//! structurally smaller alternatives.

use crate::extract::engine::{ExtractBudget, ExtractError, Extraction, ExtractionEngine};
use crate::extract::{bottom_up_with_costs, node_cost, ExtractStats, ExtractionCost, Selection};
use crate::lang::BoolLang;
use egraph::{EGraph, FxHashMap, Id, Language};
use std::time::Instant;

/// Slack-aware selection.
///
/// Runs the depth DP to get per-class unit-delay arrival times `A` and the
/// size DP for per-class tree-size estimates, then walks the depth-optimal
/// selection top-down in strictly decreasing height order propagating
/// **required times** `R` (root required time = critical arrival +
/// `extra_levels`). At each class it picks the smallest admissible e-node
/// whose estimated arrival `max_child A + gate` still meets `R`, and tightens
/// the children's required times accordingly — classic required-time area
/// recovery, lifted from mapped netlists to the e-space.
///
/// The depth-optimal node is always admissible (its arrival is `A ≤ R` by
/// construction), so the engine never fails where the depth DP succeeds, and
/// the realized depth never exceeds the target even if the budget cuts the
/// walk short (unprocessed classes keep their depth-optimal nodes).
#[derive(Debug, Clone, Copy, Default)]
pub struct SlackAwareEngine {
    /// Extra levels of depth the recovery is allowed to spend beyond the
    /// depth-optimal critical path (0 = hold the optimal depth).
    extra_levels: u64,
}

impl SlackAwareEngine {
    /// A slack-aware engine that holds the depth-optimal critical path.
    pub fn new() -> Self {
        SlackAwareEngine::default()
    }

    /// Allows the recovery to relax the depth target by `levels` gate levels,
    /// buying more room for area recovery.
    #[must_use]
    pub fn with_extra_levels(mut self, levels: u64) -> Self {
        self.extra_levels = levels;
        self
    }
}

/// Heights over the depth-optimal selection (every edge counts one level, so
/// processing classes in strictly decreasing height order sees every parent
/// before any of its selection children).
fn selection_heights(
    egraph: &EGraph<BoolLang>,
    selection: &FxHashMap<Id, BoolLang>,
) -> FxHashMap<Id, u64> {
    let mut heights: FxHashMap<Id, u64> = FxHashMap::default();
    let mut stack: Vec<(Id, bool)> = Vec::new();
    for &start in selection.keys() {
        stack.push((start, false));
        while let Some((id, ready)) = stack.pop() {
            if heights.contains_key(&id) {
                continue;
            }
            let Some(node) = selection.get(&id) else {
                heights.insert(id, 0);
                continue;
            };
            if ready {
                let mut h = 0u64;
                for &c in node.children() {
                    h = h.max(1 + heights.get(&egraph.find(c)).copied().unwrap_or(0));
                }
                heights.insert(id, h);
            } else {
                stack.push((id, true));
                for &c in node.children() {
                    let c = egraph.find(c);
                    if !heights.contains_key(&c) {
                        stack.push((c, false));
                    }
                }
            }
        }
    }
    heights
}

impl ExtractionEngine for SlackAwareEngine {
    fn name(&self) -> &'static str {
        "slack-aware"
    }

    fn extract(
        &self,
        egraph: &EGraph<BoolLang>,
        roots: &[Id],
        budget: &ExtractBudget,
    ) -> Result<Extraction, ExtractError> {
        let start = Instant::now();
        let (depth_sel, arrivals, depth_stats) =
            bottom_up_with_costs(egraph, ExtractionCost::Depth, true);
        let (_, size_costs, size_stats) = bottom_up_with_costs(egraph, ExtractionCost::Size, true);
        let mut selection = depth_sel.choices;
        let roots: Vec<Id> = roots.iter().map(|&r| egraph.find(r)).collect();
        for &root in &roots {
            if !selection.contains_key(&root) {
                return Err(ExtractError::Unrealizable(root));
            }
        }

        let mut stats = ExtractStats {
            nodes_evaluated: depth_stats.nodes_evaluated + size_stats.nodes_evaluated,
            improvements: 0,
            runtime: Default::default(),
        };
        let base_selection = selection.clone();
        let heights = selection_heights(egraph, &selection);

        // Required times, seeded at the roots with the relaxed target.
        let target = roots
            .iter()
            .filter_map(|r| arrivals.get(r).copied())
            .max()
            .unwrap_or(0)
            .saturating_add(self.extra_levels);
        let mut required: FxHashMap<Id, u64> = FxHashMap::default();
        for &root in &roots {
            required.insert(root, target);
        }

        // Top-down in strictly decreasing (height, id) order: every parent is
        // finalized (its required time fully tightened) before any child.
        let mut order: Vec<Id> = selection.keys().copied().collect();
        order.sort_by_key(|id| {
            (
                std::cmp::Reverse(heights.get(id).copied().unwrap_or(0)),
                *id,
            )
        });

        let mut evaluations = 0u64;
        'walk: for &class_id in &order {
            // Classes never reached from a root under the final selection
            // have no required time and keep their depth-optimal node.
            let Some(&r_x) = required.get(&class_id) else {
                continue;
            };
            let class_height = heights.get(&class_id).copied().unwrap_or(0);

            // Pick the smallest admissible node that still meets R.
            let mut best: Option<(u64, usize)> = None;
            for (pos, node) in egraph.class(class_id).nodes.iter().enumerate() {
                if evaluations.is_multiple_of(256) && budget.exhausted(evaluations, start) {
                    break 'walk;
                }
                evaluations += 1;
                stats.nodes_evaluated += 1;

                let mut admissible = true;
                let mut est_arrival = 0u64;
                let mut est_size = 0u64;
                for &c in node.children() {
                    let c = egraph.find(c);
                    let realizable = selection.contains_key(&c)
                        && heights.get(&c).is_some_and(|&ch| ch < class_height);
                    let Some(&a_c) = arrivals.get(&c).filter(|_| realizable) else {
                        admissible = false;
                        break;
                    };
                    est_arrival = est_arrival.max(a_c);
                    est_size = est_size
                        .saturating_add(size_costs.get(&c).copied().unwrap_or(u64::MAX / 4));
                }
                if !admissible {
                    continue;
                }
                let est_arrival = est_arrival.saturating_add(node_cost(node));
                if est_arrival > r_x {
                    continue;
                }
                let key = est_size.saturating_add(node_cost(node));
                if best.is_none_or(|(bk, bp)| (key, pos) < (bk, bp)) {
                    best = Some((key, pos));
                }
            }

            // The depth-optimal node always meets R (A(x) ≤ R(x) invariant),
            // but it may sit at a non-admissible height only if the class was
            // never live — and live classes inherit their depth-DP node whose
            // children are strictly lower by construction, so `best` is Some.
            let chosen = match best {
                Some((_, pos)) => egraph.class(class_id).nodes[pos].clone(),
                None => selection[&class_id].clone(),
            };
            if chosen != selection[&class_id] {
                stats.improvements += 1;
            }
            // Tighten the children's required times under the chosen node.
            let slack_budget = r_x.saturating_sub(node_cost(&chosen));
            for &c in chosen.children() {
                let c = egraph.find(c);
                let entry = required.entry(c).or_insert(slack_budget);
                *entry = (*entry).min(slack_budget);
            }
            selection.insert(class_id, chosen);
        }

        // Keep-best: the per-class greedy minimizes tree-size estimates, so
        // on rare sharing-heavy graphs it can lose DAG size globally — fall
        // back to the depth-optimal base when it does.
        let refined = Selection { choices: selection };
        let base = Selection {
            choices: base_selection,
        };
        let refined_size =
            crate::extract::try_selection_cost(egraph, &refined, &roots, ExtractionCost::Size);
        let base_size =
            crate::extract::try_selection_cost(egraph, &base, &roots, ExtractionCost::Size)?;
        let selection = match refined_size {
            Ok(size) if size <= base_size => refined,
            _ => {
                stats.improvements = 0;
                base
            }
        };

        stats.runtime = start.elapsed();
        Ok(Extraction {
            selection,
            class_costs: arrivals,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::test_util::saturated_egraph;
    use crate::extract::{try_selection_cost, BottomUpEngine};

    #[test]
    fn holds_depth_optimal_critical_path() {
        for (name, aig, iters) in [
            ("adder", benchgen::adder(5).aig, 3),
            ("mult", benchgen::multiplier(3).aig, 2),
        ] {
            let (egraph, roots) = saturated_egraph(&aig, iters);
            let budget = ExtractBudget::unlimited();
            let depth_opt = BottomUpEngine::new(ExtractionCost::Depth)
                .extract(&egraph, &roots, &budget)
                .unwrap();
            let slack = SlackAwareEngine::new()
                .extract(&egraph, &roots, &budget)
                .unwrap();
            let d_opt =
                try_selection_cost(&egraph, &depth_opt.selection, &roots, ExtractionCost::Depth)
                    .unwrap();
            let d_slack =
                try_selection_cost(&egraph, &slack.selection, &roots, ExtractionCost::Depth)
                    .unwrap();
            assert!(d_slack <= d_opt, "{name}: slack {d_slack} vs opt {d_opt}");
        }
    }

    #[test]
    fn area_recovery_not_worse_than_depth_dp_tree() {
        let aig = benchgen::adder(6).aig;
        let (egraph, roots) = saturated_egraph(&aig, 3);
        let budget = ExtractBudget::unlimited();
        let depth_opt = BottomUpEngine::new(ExtractionCost::Depth)
            .extract(&egraph, &roots, &budget)
            .unwrap();
        let slack = SlackAwareEngine::new()
            .extract(&egraph, &roots, &budget)
            .unwrap();
        let s_opt = try_selection_cost(&egraph, &depth_opt.selection, &roots, ExtractionCost::Size)
            .unwrap();
        let s_slack =
            try_selection_cost(&egraph, &slack.selection, &roots, ExtractionCost::Size).unwrap();
        assert!(
            s_slack <= s_opt,
            "slack-aware should recover area: {s_slack} vs {s_opt}"
        );
    }

    #[test]
    fn extra_levels_relax_the_target() {
        let aig = benchgen::adder(6).aig;
        let (egraph, roots) = saturated_egraph(&aig, 3);
        let budget = ExtractBudget::unlimited();
        let tight = SlackAwareEngine::new()
            .extract(&egraph, &roots, &budget)
            .unwrap();
        let relaxed = SlackAwareEngine::new()
            .with_extra_levels(2)
            .extract(&egraph, &roots, &budget)
            .unwrap();
        let d_tight =
            try_selection_cost(&egraph, &tight.selection, &roots, ExtractionCost::Depth).unwrap();
        let d_relaxed =
            try_selection_cost(&egraph, &relaxed.selection, &roots, ExtractionCost::Depth).unwrap();
        // The relaxed run may go deeper, but never beyond the relaxed target
        // (the tight run realizes exactly the optimal depth).
        assert!(d_relaxed <= d_tight + 2);
        // Both runs keep-best against the depth-DP base, so neither can lose
        // DAG size versus it.
        let base = BottomUpEngine::new(ExtractionCost::Depth)
            .extract(&egraph, &roots, &budget)
            .unwrap();
        let s_base =
            try_selection_cost(&egraph, &base.selection, &roots, ExtractionCost::Size).unwrap();
        let s_tight =
            try_selection_cost(&egraph, &tight.selection, &roots, ExtractionCost::Size).unwrap();
        let s_relaxed =
            try_selection_cost(&egraph, &relaxed.selection, &roots, ExtractionCost::Size).unwrap();
        assert!(s_tight <= s_base);
        assert!(s_relaxed <= s_base);
    }

    #[test]
    fn extraction_is_equivalent_to_input() {
        let aig = benchgen::adder(4).aig;
        let conv = crate::convert::aig_to_egraph(&aig);
        let (egraph, roots) = saturated_egraph(&aig, 3);
        let extraction = SlackAwareEngine::new()
            .extract(&egraph, &roots, &ExtractBudget::unlimited())
            .unwrap();
        let back = crate::convert::try_selection_to_aig(
            &egraph,
            &extraction.selection,
            &roots,
            &conv.input_names,
            &conv.output_names,
            "slack-aware",
        )
        .unwrap();
        for p in 0..(1usize << aig.num_inputs()) {
            let bits: Vec<bool> = (0..aig.num_inputs()).map(|i| p >> i & 1 == 1).collect();
            assert_eq!(aig.evaluate(&bits), back.evaluate(&bits), "pattern {p}");
        }
    }

    #[test]
    fn exhausted_budget_keeps_depth_guarantee() {
        let aig = benchgen::adder(5).aig;
        let (egraph, roots) = saturated_egraph(&aig, 3);
        let tight = ExtractBudget::unlimited().with_max_evaluations(1);
        let extraction = SlackAwareEngine::new()
            .extract(&egraph, &roots, &tight)
            .unwrap();
        let depth_opt = BottomUpEngine::new(ExtractionCost::Depth)
            .extract(&egraph, &roots, &ExtractBudget::unlimited())
            .unwrap();
        let d_opt =
            try_selection_cost(&egraph, &depth_opt.selection, &roots, ExtractionCost::Depth)
                .unwrap();
        let d_cut = try_selection_cost(
            &egraph,
            &extraction.selection,
            &roots,
            ExtractionCost::Depth,
        )
        .unwrap();
        assert!(d_cut <= d_opt);
    }
}
