//! Simulated-annealing e-graph extraction (paper Fig. 4 and Algorithm 1).
//!
//! The extractor starts from a greedy bottom-up solution, repeatedly
//! generates neighboring solutions by re-selecting e-nodes bottom-up with a
//! controlled amount of randomness, evaluates each candidate with a
//! [`CostEvaluator`] (technology mapping or the learned model), and accepts
//! or rejects moves with the Metropolis criterion under the Section IV-A
//! cooling schedule. Several annealing chains run in parallel threads and the
//! best mapped solution wins.

use crate::convert::{selection_to_aig, ConversionResult};
use crate::extract::{bottom_up_extract, ExtractionCost, Selection};
use crate::lang::BoolLang;
use aig::Aig;
use costmodel::CostEvaluator;
use egraph::{EGraph, FxHashMap, Id, Language};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Options of the simulated-annealing extractor.
#[derive(Debug, Clone)]
pub struct SaOptions {
    /// Number of annealing iterations per chain (the paper uses 4).
    pub iterations: usize,
    /// Initial temperature `T1` (the paper uses 2000).
    pub initial_temperature: f64,
    /// Probability of rejecting an improving move during neighbor generation
    /// (`p_random` in Algorithm 1), which keeps structural diversity.
    pub p_random: f64,
    /// Number of parallel annealing chains (4 in quality mode, 6 in runtime
    /// mode in the paper).
    pub threads: usize,
    /// RNG seed; each chain derives its own stream from it.
    pub seed: u64,
    /// Structural cost used during neighbor generation ("sum" or "depth").
    pub neighbor_cost: ExtractionCost,
}

impl Default for SaOptions {
    fn default() -> Self {
        SaOptions {
            iterations: 4,
            initial_temperature: 2000.0,
            p_random: 0.1,
            threads: 4,
            seed: 0xE40,
            neighbor_cost: ExtractionCost::Depth,
        }
    }
}

impl SaOptions {
    /// A reduced configuration for unit tests and examples.
    pub fn fast() -> Self {
        SaOptions {
            iterations: 2,
            threads: 2,
            ..SaOptions::default()
        }
    }
}

/// Outcome of one annealing chain.
#[derive(Debug, Clone)]
pub struct ChainResult {
    /// Best cost reached by the chain.
    pub best_cost: f64,
    /// Number of accepted moves.
    pub accepted: usize,
    /// Number of rejected moves.
    pub rejected: usize,
}

/// The overall result of SA extraction.
#[derive(Debug)]
pub struct SaResult {
    /// The best extracted circuit across all chains.
    pub best_aig: Aig,
    /// Its evaluator cost.
    pub best_cost: f64,
    /// Cost of the greedy initial solution (before annealing).
    pub initial_cost: f64,
    /// Per-chain outcomes.
    pub chains: Vec<ChainResult>,
    /// Total wall-clock time of the extraction.
    pub runtime: Duration,
}

/// The simulated-annealing extractor.
#[derive(Debug, Clone)]
pub struct SaExtractor {
    /// The options in effect.
    pub options: SaOptions,
}

impl SaExtractor {
    /// Creates an extractor with the given options.
    pub fn new(options: SaOptions) -> Self {
        SaExtractor { options }
    }

    /// Runs parallel simulated-annealing extraction on a converted circuit.
    pub fn extract(
        &self,
        conversion: &ConversionResult,
        evaluator: &dyn CostEvaluator,
    ) -> SaResult {
        let start = Instant::now();
        let egraph = &conversion.egraph;
        let roots = &conversion.roots;

        // Greedy initial solution shared by all chains.
        let (initial_selection, _) = bottom_up_extract(egraph, self.options.neighbor_cost);
        let initial_aig = selection_to_aig(
            egraph,
            &initial_selection,
            roots,
            &conversion.input_names,
            &conversion.output_names,
            &conversion.name,
        );
        let initial_cost = evaluator.evaluate(&initial_aig);

        let threads = self.options.threads.max(1);
        let chain_outputs: Vec<(Aig, f64, ChainResult)> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for chain_index in 0..threads {
                let options = self.options.clone();
                let initial_selection = initial_selection.clone();
                let initial_aig = initial_aig.clone();
                handles.push(scope.spawn(move || {
                    run_chain(
                        egraph,
                        roots,
                        conversion,
                        evaluator,
                        initial_selection,
                        initial_aig,
                        initial_cost,
                        &options,
                        chain_index,
                    )
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("annealing chain panicked"))
                .collect()
        });

        let mut best_aig = initial_aig;
        let mut best_cost = initial_cost;
        let mut chains = Vec::with_capacity(chain_outputs.len());
        for (aig, cost, chain) in chain_outputs {
            if cost < best_cost {
                best_cost = cost;
                best_aig = aig;
            }
            chains.push(chain);
        }

        SaResult {
            best_aig,
            best_cost,
            initial_cost,
            chains,
            runtime: start.elapsed(),
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_chain(
    egraph: &EGraph<BoolLang>,
    roots: &[Id],
    conversion: &ConversionResult,
    evaluator: &dyn CostEvaluator,
    initial_selection: Selection,
    initial_aig: Aig,
    initial_cost: f64,
    options: &SaOptions,
    chain_index: usize,
) -> (Aig, f64, ChainResult) {
    let mut rng =
        StdRng::seed_from_u64(options.seed ^ (chain_index as u64).wrapping_mul(0x9E37_79B9));
    let mut current_selection = initial_selection;
    let mut current_cost = initial_cost;
    let mut best_aig = initial_aig;
    let mut best_cost = initial_cost;
    let mut temperature = options.initial_temperature;
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    // One parent-index build per chain, shared by every neighbor generation.
    let parent_index = egraph.parent_index();

    for iteration in 1..=options.iterations {
        let neighbor = generate_neighbor(
            egraph,
            &parent_index,
            &current_selection,
            options.neighbor_cost,
            options.p_random,
            &mut rng,
        );
        let candidate_aig = selection_to_aig(
            egraph,
            &neighbor,
            roots,
            &conversion.input_names,
            &conversion.output_names,
            &conversion.name,
        );
        let candidate_cost = evaluator.evaluate(&candidate_aig);
        let delta = candidate_cost - current_cost;

        let accept = if delta < 0.0 {
            true
        } else {
            // Metropolis criterion.
            let prob = (-delta / temperature.max(1e-9)).exp();
            rng.random::<f64>() < prob
        };
        if accept {
            current_selection = neighbor;
            current_cost = candidate_cost;
            accepted += 1;
            if candidate_cost < best_cost {
                best_cost = candidate_cost;
                best_aig = candidate_aig;
            }
        } else {
            rejected += 1;
        }

        // Cooling schedule from Section IV-A: the first iteration keeps the
        // high starting temperature; the 2nd and 3rd iterations scale it by
        // |Δcost| / (n * 10000); the final iteration by |Δcost| / n.
        let n = iteration as f64;
        if iteration + 1 < options.iterations {
            temperature *= delta.abs() / (n * 10_000.0);
        } else {
            temperature *= delta.abs() / n;
        }
        temperature = temperature.max(1e-6);
    }

    (
        best_aig,
        best_cost,
        ChainResult {
            best_cost,
            accepted,
            rejected,
        },
    )
}

/// Algorithm 1: generate a neighboring solution by traversing the e-graph
/// bottom-up from the leaves, re-selecting e-nodes that improve the cached
/// class cost, with probability `p_random` of skipping an improvement.
///
/// `parent_index` is the e-graph's [`EGraph::parent_index`]; callers that
/// generate many neighbors (the annealing chains) build it once and reuse it
/// across calls instead of paying for it per neighbor.
pub fn generate_neighbor(
    egraph: &EGraph<BoolLang>,
    parent_index: &egraph::FxHashMap<Id, Vec<(Id, BoolLang)>>,
    current: &Selection,
    cost_kind: ExtractionCost,
    p_random: f64,
    rng: &mut StdRng,
) -> Selection {
    let mut new_selection = current.clone();
    let mut costs: FxHashMap<Id, u64> = FxHashMap::default();

    let mut queue: VecDeque<(Id, BoolLang)> = VecDeque::new();
    for class in egraph.classes() {
        for node in &class.nodes {
            if node.is_leaf() {
                queue.push_back((class.id, node.clone()));
            }
        }
    }

    while let Some((class_id, node)) = queue.pop_front() {
        let mut ready = true;
        let mut combined = 0u64;
        for &child in node.children() {
            match costs.get(&egraph.find(child)) {
                Some(&c) => {
                    combined = match cost_kind {
                        ExtractionCost::Size => combined.saturating_add(c),
                        ExtractionCost::Depth => combined.max(c),
                    }
                }
                None => {
                    ready = false;
                    break;
                }
            }
        }
        if !ready {
            continue;
        }
        let new_cost = combined.saturating_add(super::node_cost(&node));
        let previous = costs.get(&class_id).copied();
        let improves = previous.is_none_or(|prev| new_cost < prev);
        // Line 15 of Algorithm 1: accept the update when the class is
        // uncosted, or when it improves and the random draw does not veto it.
        let take = match previous {
            None => true,
            Some(_) => improves && rng.random::<f64>() >= p_random,
        };
        if take {
            costs.insert(class_id, new_cost);
            new_selection.set(class_id, node);
            if let Some(parents) = parent_index.get(&class_id) {
                for (parent_class, parent_node) in parents {
                    queue.push_back((*parent_class, parent_node.clone()));
                }
            }
        }
    }

    new_selection
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::aig_to_egraph;
    use crate::rules::all_rules;
    use cec::{check_equivalence, CecOptions};
    use costmodel::TechMapCost;
    use egraph::{Runner, Scheduler};
    use techmap::library::asap7_like;

    fn saturated_conversion(aig: &Aig, iters: usize) -> ConversionResult {
        let conv = aig_to_egraph(aig);
        let runner = Runner::with_egraph(conv.egraph.clone())
            .with_iter_limit(iters)
            .with_node_limit(15_000)
            .with_scheduler(Scheduler::Backoff {
                match_limit: 1_000,
                ban_length: 2,
            })
            .run(&all_rules());
        ConversionResult {
            roots: conv.roots.iter().map(|&r| runner.egraph.find(r)).collect(),
            egraph: runner.egraph,
            ..conv
        }
    }

    #[test]
    fn neighbor_generation_preserves_function() {
        let aig = benchgen::adder(4).aig;
        let conv = saturated_conversion(&aig, 3);
        let (initial, _) = bottom_up_extract(&conv.egraph, ExtractionCost::Depth);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..5 {
            let neighbor = generate_neighbor(
                &conv.egraph,
                &conv.egraph.parent_index(),
                &initial,
                ExtractionCost::Depth,
                0.3,
                &mut rng,
            );
            let back = selection_to_aig(
                &conv.egraph,
                &neighbor,
                &conv.roots,
                &conv.input_names,
                &conv.output_names,
                "neighbor",
            );
            let res = check_equivalence(&aig, &back, &CecOptions::default());
            assert!(res.is_equivalent(), "{res:?}");
        }
    }

    #[test]
    fn sa_extraction_finds_valid_and_not_worse_solution() {
        let aig = benchgen::adder(5).aig;
        let conv = saturated_conversion(&aig, 3);
        let evaluator = TechMapCost::new(asap7_like());
        let extractor = SaExtractor::new(SaOptions::fast());
        let result = extractor.extract(&conv, &evaluator);
        assert!(result.best_cost <= result.initial_cost);
        assert!(check_equivalence(&aig, &result.best_aig, &CecOptions::default()).is_equivalent());
        assert_eq!(result.chains.len(), 2);
        for chain in &result.chains {
            assert_eq!(chain.accepted + chain.rejected, 2);
        }
    }

    #[test]
    fn deterministic_given_seed_and_single_thread() {
        let aig = benchgen::adder(4).aig;
        let conv = saturated_conversion(&aig, 2);
        let evaluator = TechMapCost::new(asap7_like());
        let options = SaOptions {
            threads: 1,
            iterations: 2,
            seed: 7,
            ..SaOptions::default()
        };
        let a = SaExtractor::new(options.clone()).extract(&conv, &evaluator);
        let b = SaExtractor::new(options).extract(&conv, &evaluator);
        assert_eq!(a.best_cost, b.best_cost);
        assert_eq!(a.chains[0].accepted, b.chains[0].accepted);
    }

    #[test]
    fn more_threads_never_hurt_best_cost() {
        let aig = benchgen::adder(4).aig;
        let conv = saturated_conversion(&aig, 3);
        let evaluator = TechMapCost::new(asap7_like());
        let single = SaExtractor::new(SaOptions {
            threads: 1,
            iterations: 2,
            seed: 3,
            ..SaOptions::default()
        })
        .extract(&conv, &evaluator);
        let quad = SaExtractor::new(SaOptions {
            threads: 4,
            iterations: 2,
            seed: 3,
            ..SaOptions::default()
        })
        .extract(&conv, &evaluator);
        // The single-thread chain is one of the four (same seed), so the
        // parallel best can only be equal or better.
        assert!(quad.best_cost <= single.best_cost + 1e-9);
    }
}
