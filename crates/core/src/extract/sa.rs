//! Simulated-annealing e-graph extraction (paper Fig. 4 and Algorithm 1).
//!
//! The extractor starts from a greedy bottom-up solution, repeatedly
//! generates neighboring solutions by re-selecting e-nodes bottom-up with a
//! controlled amount of randomness, evaluates each candidate with a
//! [`CostEvaluator`] (technology mapping or the learned model), and accepts
//! or rejects moves with the Metropolis criterion under the Section IV-A
//! cooling schedule. Several annealing chains run in parallel threads and the
//! best mapped solution wins. [`SaEngine`] adapts the extractor to the
//! [`ExtractionEngine`] trait.

use crate::convert::{selection_to_aig, ConversionResult};
use crate::extract::engine::{
    synthetic_names, ExtractBudget, ExtractError, Extraction, ExtractionEngine,
};
use crate::extract::{
    bottom_up_extract, bottom_up_with_costs, ExtractStats, ExtractionCost, Selection,
};
use crate::lang::BoolLang;
use aig::Aig;
use costmodel::CostEvaluator;
use egraph::{EGraph, FxHashMap, Id, Language};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Options of the simulated-annealing extractor.
#[derive(Debug, Clone)]
pub struct SaOptions {
    /// Number of annealing iterations per chain (the paper uses 4).
    pub iterations: usize,
    /// Initial temperature `T1` (the paper uses 2000).
    pub initial_temperature: f64,
    /// Probability of rejecting an improving move during neighbor generation
    /// (`p_random` in Algorithm 1), which keeps structural diversity.
    pub p_random: f64,
    /// Number of parallel annealing chains (4 in quality mode, 6 in runtime
    /// mode in the paper).
    pub threads: usize,
    /// RNG seed; each chain derives its own stream from it.
    pub seed: u64,
    /// Structural cost used during neighbor generation ("sum" or "depth").
    pub neighbor_cost: ExtractionCost,
}

impl Default for SaOptions {
    fn default() -> Self {
        SaOptions {
            iterations: 4,
            initial_temperature: 2000.0,
            p_random: 0.1,
            threads: 4,
            seed: 0xE40,
            neighbor_cost: ExtractionCost::Depth,
        }
    }
}

impl SaOptions {
    /// The paper's default configuration (alias of `Default`), as a starting
    /// point for the `with_*` builders.
    pub fn new() -> Self {
        SaOptions::default()
    }

    /// A reduced configuration for unit tests and examples.
    pub fn fast() -> Self {
        SaOptions {
            iterations: 2,
            threads: 2,
            ..SaOptions::default()
        }
    }

    /// Sets the number of annealing iterations per chain.
    #[must_use]
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations;
        self
    }

    /// Sets the initial temperature `T1`.
    #[must_use]
    pub fn with_initial_temperature(mut self, t1: f64) -> Self {
        self.initial_temperature = t1;
        self
    }

    /// Sets the probability of vetoing an improving move during neighbor
    /// generation.
    #[must_use]
    pub fn with_p_random(mut self, p_random: f64) -> Self {
        self.p_random = p_random;
        self
    }

    /// Sets the number of parallel annealing chains.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the RNG seed (each chain derives its own stream from it).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the structural cost used during neighbor generation.
    #[must_use]
    pub fn with_neighbor_cost(mut self, cost: ExtractionCost) -> Self {
        self.neighbor_cost = cost;
        self
    }
}

/// Outcome of one annealing chain.
#[derive(Debug, Clone)]
pub struct ChainResult {
    /// Best cost reached by the chain.
    pub best_cost: f64,
    /// The chain's statistics: `nodes_evaluated` counts candidate circuits
    /// evaluated, `improvements` counts accepted moves.
    pub stats: ExtractStats,
}

/// The overall result of SA extraction.
#[derive(Debug)]
pub struct SaResult {
    /// The best extracted circuit across all chains.
    pub best_aig: Aig,
    /// The e-node selection realizing [`SaResult::best_aig`].
    pub best_selection: Selection,
    /// Its evaluator cost.
    pub best_cost: f64,
    /// Cost of the greedy initial solution (before annealing).
    pub initial_cost: f64,
    /// Per-chain outcomes.
    pub chains: Vec<ChainResult>,
    /// Aggregate statistics over all chains (runtime is wall-clock, not the
    /// sum of chain times).
    pub stats: ExtractStats,
    /// Total wall-clock time of the extraction.
    pub runtime: Duration,
}

/// The simulated-annealing extractor.
#[derive(Debug, Clone)]
pub struct SaExtractor {
    /// The options in effect.
    pub options: SaOptions,
}

impl SaExtractor {
    /// Creates an extractor with the given options.
    pub fn new(options: SaOptions) -> Self {
        SaExtractor { options }
    }

    /// Runs parallel simulated-annealing extraction on a converted circuit.
    pub fn extract(
        &self,
        conversion: &ConversionResult,
        evaluator: &dyn CostEvaluator,
    ) -> SaResult {
        extract_from_parts(
            &conversion.egraph,
            &conversion.roots,
            &conversion.input_names,
            &conversion.output_names,
            &conversion.name,
            evaluator,
            &self.options,
            self.options.iterations,
        )
    }
}

/// The core SA run, shared by [`SaExtractor`] (caller-provided port names)
/// and [`SaEngine`] (synthetic names, budget-capped iterations).
#[allow(clippy::too_many_arguments)]
fn extract_from_parts(
    egraph: &EGraph<BoolLang>,
    roots: &[Id],
    input_names: &[String],
    output_names: &[String],
    name: &str,
    evaluator: &dyn CostEvaluator,
    options: &SaOptions,
    iterations: usize,
) -> SaResult {
    let start = Instant::now();

    // Greedy initial solution shared by all chains.
    let (initial_selection, _) = bottom_up_extract(egraph, options.neighbor_cost);
    let initial_aig = selection_to_aig(
        egraph,
        &initial_selection,
        roots,
        input_names,
        output_names,
        name,
    );
    let initial_cost = evaluator.evaluate(&initial_aig);

    let threads = options.threads.max(1);
    let chain_outputs: Vec<(Selection, Aig, f64, ChainResult)> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for chain_index in 0..threads {
            let options = options.clone();
            let initial_selection = initial_selection.clone();
            let initial_aig = initial_aig.clone();
            handles.push(scope.spawn(move || {
                run_chain(
                    egraph,
                    roots,
                    input_names,
                    output_names,
                    name,
                    evaluator,
                    initial_selection,
                    initial_aig,
                    initial_cost,
                    &options,
                    iterations,
                    chain_index,
                )
            }));
        }
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });

    let mut best_aig = initial_aig;
    let mut best_selection = initial_selection;
    let mut best_cost = initial_cost;
    let mut chains = Vec::with_capacity(chain_outputs.len());
    let mut stats = ExtractStats::default();
    for (selection, aig, cost, chain) in chain_outputs {
        if cost < best_cost {
            best_cost = cost;
            best_aig = aig;
            best_selection = selection;
        }
        stats.nodes_evaluated += chain.stats.nodes_evaluated;
        stats.improvements += chain.stats.improvements;
        chains.push(chain);
    }
    let runtime = start.elapsed();
    stats.runtime = runtime;

    SaResult {
        best_aig,
        best_selection,
        best_cost,
        initial_cost,
        chains,
        stats,
        runtime,
    }
}

#[allow(clippy::too_many_arguments)]
fn run_chain(
    egraph: &EGraph<BoolLang>,
    roots: &[Id],
    input_names: &[String],
    output_names: &[String],
    name: &str,
    evaluator: &dyn CostEvaluator,
    initial_selection: Selection,
    initial_aig: Aig,
    initial_cost: f64,
    options: &SaOptions,
    iterations: usize,
    chain_index: usize,
) -> (Selection, Aig, f64, ChainResult) {
    let mut rng =
        StdRng::seed_from_u64(options.seed ^ (chain_index as u64).wrapping_mul(0x9E37_79B9));
    let mut current_selection = initial_selection.clone();
    let mut current_cost = initial_cost;
    let mut best_selection = initial_selection;
    let mut best_aig = initial_aig;
    let mut best_cost = initial_cost;
    let mut temperature = options.initial_temperature;
    let mut stats = ExtractStats::default();
    // One parent-index build per chain, shared by every neighbor generation.
    let parent_index = egraph.parent_index();

    for iteration in 1..=iterations {
        let neighbor = generate_neighbor(
            egraph,
            &parent_index,
            &current_selection,
            options.neighbor_cost,
            options.p_random,
            &mut rng,
        );
        let candidate_aig =
            selection_to_aig(egraph, &neighbor, roots, input_names, output_names, name);
        let candidate_cost = evaluator.evaluate(&candidate_aig);
        stats.nodes_evaluated += 1;
        let delta = candidate_cost - current_cost;

        let accept = if delta < 0.0 {
            true
        } else {
            // Metropolis criterion.
            let prob = (-delta / temperature.max(1e-9)).exp();
            rng.random::<f64>() < prob
        };
        if accept {
            current_selection = neighbor;
            current_cost = candidate_cost;
            stats.improvements += 1;
            if candidate_cost < best_cost {
                best_cost = candidate_cost;
                best_aig = candidate_aig;
                best_selection = current_selection.clone();
            }
        }

        temperature = cooled_temperature(temperature, delta, iteration, iterations);
    }

    (
        best_selection,
        best_aig,
        best_cost,
        ChainResult { best_cost, stats },
    )
}

/// The [`ExtractionEngine`] adapter of the SA extractor.
///
/// Port names are synthesized for the candidate circuits (evaluators map the
/// netlist; names are irrelevant to cost), and the selection realizing the
/// best circuit is returned. The budget's `max_evaluations` caps the total
/// candidate evaluations across all chains by shortening each chain
/// deterministically; the wall-clock backstop is not consulted (chains check
/// no clocks, keeping results machine-independent).
pub struct SaEngine {
    options: SaOptions,
    evaluator: Arc<dyn CostEvaluator>,
}

impl SaEngine {
    /// Creates an SA engine annealing under the given evaluator.
    pub fn new(options: SaOptions, evaluator: Arc<dyn CostEvaluator>) -> Self {
        SaEngine { options, evaluator }
    }
}

impl std::fmt::Debug for SaEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SaEngine")
            .field("options", &self.options)
            .field("evaluator", &self.evaluator.name())
            .finish()
    }
}

impl ExtractionEngine for SaEngine {
    fn name(&self) -> &'static str {
        "sa"
    }

    fn extract(
        &self,
        egraph: &EGraph<BoolLang>,
        roots: &[Id],
        budget: &ExtractBudget,
    ) -> Result<Extraction, ExtractError> {
        let start = Instant::now();
        let threads = self.options.threads.max(1);
        let iterations = match budget.max_evaluations {
            Some(max) => (max as usize / threads).min(self.options.iterations),
            None => self.options.iterations,
        };
        let (input_names, output_names) = synthetic_names(egraph, roots.len());
        // Realizability check up front: SA's greedy seed panics on
        // unrealizable roots, the engine API reports them as typed errors.
        let (seed_selection, class_costs, _) =
            bottom_up_with_costs(egraph, ExtractionCost::Size, true);
        for &root in roots {
            let root = egraph.find(root);
            if !seed_selection.choices.contains_key(&root) {
                return Err(ExtractError::Unrealizable(root));
            }
        }
        let result = extract_from_parts(
            egraph,
            roots,
            &input_names,
            &output_names,
            "sa-extracted",
            self.evaluator.as_ref(),
            &self.options,
            iterations,
        );
        let mut stats = result.stats;
        stats.runtime = start.elapsed();
        Ok(Extraction {
            selection: result.best_selection,
            class_costs,
            stats,
        })
    }
}

/// The Section IV-A cooling schedule, applied at the end of `iteration`
/// (1-based) to produce the temperature for the next iteration.
///
/// The first iteration keeps the high starting temperature `T1`; the middle
/// iterations scale by `|Δcost| / (n * 10000)`; the temperature entering the
/// final iteration scales by `|Δcost| / n`. Two guards keep the schedule from
/// degenerating: iteration 1 never scales (the old code cooled immediately,
/// discarding `T1` after a single step), and a `Δcost == 0` (or non-finite)
/// iteration keeps the previous temperature — multiplying by `|0|` would
/// collapse it to the `1e-6` floor and silently turn the rest of the chain
/// into hill-climbing. The keep-`T1` guard takes precedence, so a chain with
/// `total_iterations <= 2` never cools at all — both of its iterations
/// explore at `T1`, with solution quality protected by best-cost tracking.
fn cooled_temperature(
    temperature: f64,
    delta: f64,
    iteration: usize,
    total_iterations: usize,
) -> f64 {
    if iteration <= 1 || delta == 0.0 || !delta.is_finite() {
        return temperature;
    }
    let n = iteration as f64;
    let scaled = if iteration + 1 < total_iterations {
        temperature * delta.abs() / (n * 10_000.0)
    } else {
        temperature * delta.abs() / n
    };
    scaled.max(1e-6)
}

/// Algorithm 1: generate a neighboring solution by traversing the e-graph
/// bottom-up from the leaves, re-selecting e-nodes that improve the cached
/// class cost, with probability `p_random` of skipping an improvement.
///
/// `parent_index` is the e-graph's [`EGraph::parent_index`]; callers that
/// generate many neighbors (the annealing chains) build it once and reuse it
/// across calls instead of paying for it per neighbor.
pub fn generate_neighbor(
    egraph: &EGraph<BoolLang>,
    parent_index: &egraph::FxHashMap<Id, Vec<(Id, BoolLang)>>,
    current: &Selection,
    cost_kind: ExtractionCost,
    p_random: f64,
    rng: &mut StdRng,
) -> Selection {
    let mut new_selection = current.clone();
    let mut costs: FxHashMap<Id, u64> = FxHashMap::default();

    let mut queue: VecDeque<(Id, BoolLang)> = VecDeque::new();
    for class in egraph.classes() {
        for node in &class.nodes {
            if node.is_leaf() {
                queue.push_back((class.id, node.clone()));
            }
        }
    }

    while let Some((class_id, node)) = queue.pop_front() {
        let mut ready = true;
        let mut combined = 0u64;
        for &child in node.children() {
            match costs.get(&egraph.find(child)) {
                Some(&c) => {
                    combined = match cost_kind {
                        ExtractionCost::Size => combined.saturating_add(c),
                        ExtractionCost::Depth => combined.max(c),
                    }
                }
                None => {
                    ready = false;
                    break;
                }
            }
        }
        if !ready {
            continue;
        }
        let new_cost = combined.saturating_add(super::node_cost(&node));
        let previous = costs.get(&class_id).copied();
        let improves = previous.is_none_or(|prev| new_cost < prev);
        // Line 15 of Algorithm 1: accept the update when the class is
        // uncosted, or when it improves and the random draw does not veto it.
        let take = match previous {
            None => true,
            Some(_) => improves && rng.random::<f64>() >= p_random,
        };
        if take {
            costs.insert(class_id, new_cost);
            new_selection.set(class_id, node);
            if let Some(parents) = parent_index.get(&class_id) {
                for (parent_class, parent_node) in parents {
                    queue.push_back((*parent_class, parent_node.clone()));
                }
            }
        }
    }

    new_selection
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::aig_to_egraph;
    use crate::rules::all_rules;
    use cec::{check_equivalence, CecOptions};
    use costmodel::TechMapCost;
    use egraph::{Runner, Scheduler};
    use techmap::library::asap7_like;

    fn saturated_conversion(aig: &Aig, iters: usize) -> ConversionResult {
        let conv = aig_to_egraph(aig);
        let runner = Runner::with_egraph(conv.egraph.clone())
            .with_iter_limit(iters)
            .with_node_limit(15_000)
            .with_scheduler(Scheduler::Backoff {
                match_limit: 1_000,
                ban_length: 2,
            })
            .run(&all_rules());
        ConversionResult {
            roots: conv.roots.iter().map(|&r| runner.egraph.find(r)).collect(),
            egraph: runner.egraph,
            ..conv
        }
    }

    #[test]
    fn cooling_keeps_t1_through_the_first_iteration() {
        // Section IV-A: the chain starts at T1 and the first iteration must
        // not cool it.
        assert_eq!(cooled_temperature(2000.0, 57.0, 1, 4), 2000.0);
        // From the second iteration on, the middle-phase scaling applies.
        let t3 = cooled_temperature(2000.0, 50.0, 2, 4);
        assert!((t3 - 2000.0 * 50.0 / (2.0 * 10_000.0)).abs() < 1e-12);
        // The temperature entering the final iteration scales by |Δ| / n.
        let t4 = cooled_temperature(2000.0, 50.0, 3, 4);
        assert!((t4 - 2000.0 * 50.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn zero_delta_does_not_collapse_temperature() {
        // A rejected/neutral move (Δ == 0) used to multiply the temperature
        // by |0| and pin it to the 1e-6 floor for the rest of the chain.
        assert_eq!(cooled_temperature(1500.0, 0.0, 2, 4), 1500.0);
        assert_eq!(cooled_temperature(1500.0, -0.0, 3, 4), 1500.0);
        assert_eq!(cooled_temperature(1500.0, f64::NAN, 2, 4), 1500.0);
        // A genuine non-zero delta still cools below the input.
        assert!(cooled_temperature(1500.0, 1.0, 2, 4) < 1500.0);
        // And the floor still applies to real cooling.
        assert!(cooled_temperature(1e-5, 1e-9, 2, 4) >= 1e-6);
    }

    #[test]
    fn builder_knobs_compose() {
        let options = SaOptions::new()
            .with_iterations(7)
            .with_initial_temperature(500.0)
            .with_p_random(0.25)
            .with_threads(3)
            .with_seed(42)
            .with_neighbor_cost(ExtractionCost::Size);
        assert_eq!(options.iterations, 7);
        assert_eq!(options.initial_temperature, 500.0);
        assert_eq!(options.p_random, 0.25);
        assert_eq!(options.threads, 3);
        assert_eq!(options.seed, 42);
        assert_eq!(options.neighbor_cost, ExtractionCost::Size);
    }

    #[test]
    fn neighbor_generation_preserves_function() {
        let aig = benchgen::adder(4).aig;
        let conv = saturated_conversion(&aig, 3);
        let (initial, _) = bottom_up_extract(&conv.egraph, ExtractionCost::Depth);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..5 {
            let neighbor = generate_neighbor(
                &conv.egraph,
                &conv.egraph.parent_index(),
                &initial,
                ExtractionCost::Depth,
                0.3,
                &mut rng,
            );
            let back = selection_to_aig(
                &conv.egraph,
                &neighbor,
                &conv.roots,
                &conv.input_names,
                &conv.output_names,
                "neighbor",
            );
            let res = check_equivalence(&aig, &back, &CecOptions::default());
            assert!(res.is_equivalent(), "{res:?}");
        }
    }

    #[test]
    fn sa_extraction_finds_valid_and_not_worse_solution() {
        let aig = benchgen::adder(5).aig;
        let conv = saturated_conversion(&aig, 3);
        let evaluator = TechMapCost::new(asap7_like());
        let extractor = SaExtractor::new(SaOptions::fast());
        let result = extractor.extract(&conv, &evaluator);
        assert!(result.best_cost <= result.initial_cost);
        assert!(check_equivalence(&aig, &result.best_aig, &CecOptions::default()).is_equivalent());
        assert_eq!(result.chains.len(), 2);
        for chain in &result.chains {
            assert_eq!(chain.stats.nodes_evaluated, 2);
            assert!(chain.stats.improvements <= chain.stats.nodes_evaluated);
        }
        assert_eq!(result.stats.nodes_evaluated, 4);
        // The reported best selection realizes the reported best circuit.
        let realized = selection_to_aig(
            &conv.egraph,
            &result.best_selection,
            &conv.roots,
            &conv.input_names,
            &conv.output_names,
            &conv.name,
        );
        assert!(
            check_equivalence(&realized, &result.best_aig, &CecOptions::default()).is_equivalent()
        );
    }

    #[test]
    fn deterministic_given_seed_and_single_thread() {
        let aig = benchgen::adder(4).aig;
        let conv = saturated_conversion(&aig, 2);
        let evaluator = TechMapCost::new(asap7_like());
        let options = SaOptions::new()
            .with_threads(1)
            .with_iterations(2)
            .with_seed(7);
        let a = SaExtractor::new(options.clone()).extract(&conv, &evaluator);
        let b = SaExtractor::new(options).extract(&conv, &evaluator);
        assert_eq!(a.best_cost, b.best_cost);
        assert_eq!(
            a.chains[0].stats.improvements,
            b.chains[0].stats.improvements
        );
    }

    #[test]
    fn more_threads_never_hurt_best_cost() {
        let aig = benchgen::adder(4).aig;
        let conv = saturated_conversion(&aig, 3);
        let evaluator = TechMapCost::new(asap7_like());
        let single = SaExtractor::new(
            SaOptions::new()
                .with_threads(1)
                .with_iterations(2)
                .with_seed(3),
        )
        .extract(&conv, &evaluator);
        let quad = SaExtractor::new(
            SaOptions::new()
                .with_threads(4)
                .with_iterations(2)
                .with_seed(3),
        )
        .extract(&conv, &evaluator);
        // The single-thread chain is one of the four (same seed), so the
        // parallel best can only be equal or better.
        assert!(quad.best_cost <= single.best_cost + 1e-9);
    }

    #[test]
    fn sa_engine_is_budget_capped_and_equivalent() {
        let aig = benchgen::adder(4).aig;
        let conv = saturated_conversion(&aig, 3);
        let evaluator: Arc<dyn CostEvaluator> = Arc::new(TechMapCost::new(asap7_like()));
        let engine = SaEngine::new(SaOptions::fast().with_seed(11), evaluator);
        // 2 threads × 2 iterations uncapped; a budget of 2 evaluations caps
        // each chain at 1 iteration.
        let capped = engine
            .extract(
                &conv.egraph,
                &conv.roots,
                &ExtractBudget::unlimited().with_max_evaluations(2),
            )
            .unwrap();
        assert_eq!(capped.stats.nodes_evaluated, 2);
        let full = engine
            .extract(&conv.egraph, &conv.roots, &ExtractBudget::unlimited())
            .unwrap();
        assert_eq!(full.stats.nodes_evaluated, 4);
        let back = crate::convert::try_selection_to_aig(
            &conv.egraph,
            &full.selection,
            &conv.roots,
            &conv.input_names,
            &conv.output_names,
            "sa-engine",
        )
        .unwrap();
        assert!(check_equivalence(&aig, &back, &CecOptions::default()).is_equivalent());
    }
}
