//! Simulated-annealing e-graph extraction (paper Fig. 4 and Algorithm 1).
//!
//! The extractor starts from a greedy bottom-up solution, repeatedly
//! generates neighboring solutions by re-selecting e-nodes bottom-up with a
//! controlled amount of randomness, evaluates each candidate with a
//! [`CostEvaluator`] (technology mapping or the learned model), and accepts
//! or rejects moves with the Metropolis criterion under the Section IV-A
//! cooling schedule. Several annealing chains run in parallel threads and the
//! best mapped solution wins.

use crate::convert::{selection_to_aig, ConversionResult};
use crate::extract::{bottom_up_extract, ExtractionCost, Selection};
use crate::lang::BoolLang;
use aig::Aig;
use costmodel::CostEvaluator;
use egraph::{EGraph, FxHashMap, Id, Language};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Options of the simulated-annealing extractor.
#[derive(Debug, Clone)]
pub struct SaOptions {
    /// Number of annealing iterations per chain (the paper uses 4).
    pub iterations: usize,
    /// Initial temperature `T1` (the paper uses 2000).
    pub initial_temperature: f64,
    /// Probability of rejecting an improving move during neighbor generation
    /// (`p_random` in Algorithm 1), which keeps structural diversity.
    pub p_random: f64,
    /// Number of parallel annealing chains (4 in quality mode, 6 in runtime
    /// mode in the paper).
    pub threads: usize,
    /// RNG seed; each chain derives its own stream from it.
    pub seed: u64,
    /// Structural cost used during neighbor generation ("sum" or "depth").
    pub neighbor_cost: ExtractionCost,
}

impl Default for SaOptions {
    fn default() -> Self {
        SaOptions {
            iterations: 4,
            initial_temperature: 2000.0,
            p_random: 0.1,
            threads: 4,
            seed: 0xE40,
            neighbor_cost: ExtractionCost::Depth,
        }
    }
}

impl SaOptions {
    /// A reduced configuration for unit tests and examples.
    pub fn fast() -> Self {
        SaOptions {
            iterations: 2,
            threads: 2,
            ..SaOptions::default()
        }
    }
}

/// Outcome of one annealing chain.
#[derive(Debug, Clone)]
pub struct ChainResult {
    /// Best cost reached by the chain.
    pub best_cost: f64,
    /// Number of accepted moves.
    pub accepted: usize,
    /// Number of rejected moves.
    pub rejected: usize,
}

/// The overall result of SA extraction.
#[derive(Debug)]
pub struct SaResult {
    /// The best extracted circuit across all chains.
    pub best_aig: Aig,
    /// Its evaluator cost.
    pub best_cost: f64,
    /// Cost of the greedy initial solution (before annealing).
    pub initial_cost: f64,
    /// Per-chain outcomes.
    pub chains: Vec<ChainResult>,
    /// Total wall-clock time of the extraction.
    pub runtime: Duration,
}

/// The simulated-annealing extractor.
#[derive(Debug, Clone)]
pub struct SaExtractor {
    /// The options in effect.
    pub options: SaOptions,
}

impl SaExtractor {
    /// Creates an extractor with the given options.
    pub fn new(options: SaOptions) -> Self {
        SaExtractor { options }
    }

    /// Runs parallel simulated-annealing extraction on a converted circuit.
    pub fn extract(
        &self,
        conversion: &ConversionResult,
        evaluator: &dyn CostEvaluator,
    ) -> SaResult {
        let start = Instant::now();
        let egraph = &conversion.egraph;
        let roots = &conversion.roots;

        // Greedy initial solution shared by all chains.
        let (initial_selection, _) = bottom_up_extract(egraph, self.options.neighbor_cost);
        let initial_aig = selection_to_aig(
            egraph,
            &initial_selection,
            roots,
            &conversion.input_names,
            &conversion.output_names,
            &conversion.name,
        );
        let initial_cost = evaluator.evaluate(&initial_aig);

        let threads = self.options.threads.max(1);
        let chain_outputs: Vec<(Aig, f64, ChainResult)> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for chain_index in 0..threads {
                let options = self.options.clone();
                let initial_selection = initial_selection.clone();
                let initial_aig = initial_aig.clone();
                handles.push(scope.spawn(move || {
                    run_chain(
                        egraph,
                        roots,
                        conversion,
                        evaluator,
                        initial_selection,
                        initial_aig,
                        initial_cost,
                        &options,
                        chain_index,
                    )
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("annealing chain panicked"))
                .collect()
        });

        let mut best_aig = initial_aig;
        let mut best_cost = initial_cost;
        let mut chains = Vec::with_capacity(chain_outputs.len());
        for (aig, cost, chain) in chain_outputs {
            if cost < best_cost {
                best_cost = cost;
                best_aig = aig;
            }
            chains.push(chain);
        }

        SaResult {
            best_aig,
            best_cost,
            initial_cost,
            chains,
            runtime: start.elapsed(),
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_chain(
    egraph: &EGraph<BoolLang>,
    roots: &[Id],
    conversion: &ConversionResult,
    evaluator: &dyn CostEvaluator,
    initial_selection: Selection,
    initial_aig: Aig,
    initial_cost: f64,
    options: &SaOptions,
    chain_index: usize,
) -> (Aig, f64, ChainResult) {
    let mut rng =
        StdRng::seed_from_u64(options.seed ^ (chain_index as u64).wrapping_mul(0x9E37_79B9));
    let mut current_selection = initial_selection;
    let mut current_cost = initial_cost;
    let mut best_aig = initial_aig;
    let mut best_cost = initial_cost;
    let mut temperature = options.initial_temperature;
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    // One parent-index build per chain, shared by every neighbor generation.
    let parent_index = egraph.parent_index();

    for iteration in 1..=options.iterations {
        let neighbor = generate_neighbor(
            egraph,
            &parent_index,
            &current_selection,
            options.neighbor_cost,
            options.p_random,
            &mut rng,
        );
        let candidate_aig = selection_to_aig(
            egraph,
            &neighbor,
            roots,
            &conversion.input_names,
            &conversion.output_names,
            &conversion.name,
        );
        let candidate_cost = evaluator.evaluate(&candidate_aig);
        let delta = candidate_cost - current_cost;

        let accept = if delta < 0.0 {
            true
        } else {
            // Metropolis criterion.
            let prob = (-delta / temperature.max(1e-9)).exp();
            rng.random::<f64>() < prob
        };
        if accept {
            current_selection = neighbor;
            current_cost = candidate_cost;
            accepted += 1;
            if candidate_cost < best_cost {
                best_cost = candidate_cost;
                best_aig = candidate_aig;
            }
        } else {
            rejected += 1;
        }

        temperature = cooled_temperature(temperature, delta, iteration, options.iterations);
    }

    (
        best_aig,
        best_cost,
        ChainResult {
            best_cost,
            accepted,
            rejected,
        },
    )
}

/// The Section IV-A cooling schedule, applied at the end of `iteration`
/// (1-based) to produce the temperature for the next iteration.
///
/// The first iteration keeps the high starting temperature `T1`; the middle
/// iterations scale by `|Δcost| / (n * 10000)`; the temperature entering the
/// final iteration scales by `|Δcost| / n`. Two guards keep the schedule from
/// degenerating: iteration 1 never scales (the old code cooled immediately,
/// discarding `T1` after a single step), and a `Δcost == 0` (or non-finite)
/// iteration keeps the previous temperature — multiplying by `|0|` would
/// collapse it to the `1e-6` floor and silently turn the rest of the chain
/// into hill-climbing. The keep-`T1` guard takes precedence, so a chain with
/// `total_iterations <= 2` never cools at all — both of its iterations
/// explore at `T1`, with solution quality protected by best-cost tracking.
fn cooled_temperature(
    temperature: f64,
    delta: f64,
    iteration: usize,
    total_iterations: usize,
) -> f64 {
    if iteration <= 1 || delta == 0.0 || !delta.is_finite() {
        return temperature;
    }
    let n = iteration as f64;
    let scaled = if iteration + 1 < total_iterations {
        temperature * delta.abs() / (n * 10_000.0)
    } else {
        temperature * delta.abs() / n
    };
    scaled.max(1e-6)
}

/// Algorithm 1: generate a neighboring solution by traversing the e-graph
/// bottom-up from the leaves, re-selecting e-nodes that improve the cached
/// class cost, with probability `p_random` of skipping an improvement.
///
/// `parent_index` is the e-graph's [`EGraph::parent_index`]; callers that
/// generate many neighbors (the annealing chains) build it once and reuse it
/// across calls instead of paying for it per neighbor.
pub fn generate_neighbor(
    egraph: &EGraph<BoolLang>,
    parent_index: &egraph::FxHashMap<Id, Vec<(Id, BoolLang)>>,
    current: &Selection,
    cost_kind: ExtractionCost,
    p_random: f64,
    rng: &mut StdRng,
) -> Selection {
    let mut new_selection = current.clone();
    let mut costs: FxHashMap<Id, u64> = FxHashMap::default();

    let mut queue: VecDeque<(Id, BoolLang)> = VecDeque::new();
    for class in egraph.classes() {
        for node in &class.nodes {
            if node.is_leaf() {
                queue.push_back((class.id, node.clone()));
            }
        }
    }

    while let Some((class_id, node)) = queue.pop_front() {
        let mut ready = true;
        let mut combined = 0u64;
        for &child in node.children() {
            match costs.get(&egraph.find(child)) {
                Some(&c) => {
                    combined = match cost_kind {
                        ExtractionCost::Size => combined.saturating_add(c),
                        ExtractionCost::Depth => combined.max(c),
                    }
                }
                None => {
                    ready = false;
                    break;
                }
            }
        }
        if !ready {
            continue;
        }
        let new_cost = combined.saturating_add(super::node_cost(&node));
        let previous = costs.get(&class_id).copied();
        let improves = previous.is_none_or(|prev| new_cost < prev);
        // Line 15 of Algorithm 1: accept the update when the class is
        // uncosted, or when it improves and the random draw does not veto it.
        let take = match previous {
            None => true,
            Some(_) => improves && rng.random::<f64>() >= p_random,
        };
        if take {
            costs.insert(class_id, new_cost);
            new_selection.set(class_id, node);
            if let Some(parents) = parent_index.get(&class_id) {
                for (parent_class, parent_node) in parents {
                    queue.push_back((*parent_class, parent_node.clone()));
                }
            }
        }
    }

    new_selection
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::aig_to_egraph;
    use crate::rules::all_rules;
    use cec::{check_equivalence, CecOptions};
    use costmodel::TechMapCost;
    use egraph::{Runner, Scheduler};
    use techmap::library::asap7_like;

    fn saturated_conversion(aig: &Aig, iters: usize) -> ConversionResult {
        let conv = aig_to_egraph(aig);
        let runner = Runner::with_egraph(conv.egraph.clone())
            .with_iter_limit(iters)
            .with_node_limit(15_000)
            .with_scheduler(Scheduler::Backoff {
                match_limit: 1_000,
                ban_length: 2,
            })
            .run(&all_rules());
        ConversionResult {
            roots: conv.roots.iter().map(|&r| runner.egraph.find(r)).collect(),
            egraph: runner.egraph,
            ..conv
        }
    }

    #[test]
    fn cooling_keeps_t1_through_the_first_iteration() {
        // Section IV-A: the chain starts at T1 and the first iteration must
        // not cool it.
        assert_eq!(cooled_temperature(2000.0, 57.0, 1, 4), 2000.0);
        // From the second iteration on, the middle-phase scaling applies.
        let t3 = cooled_temperature(2000.0, 50.0, 2, 4);
        assert!((t3 - 2000.0 * 50.0 / (2.0 * 10_000.0)).abs() < 1e-12);
        // The temperature entering the final iteration scales by |Δ| / n.
        let t4 = cooled_temperature(2000.0, 50.0, 3, 4);
        assert!((t4 - 2000.0 * 50.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn zero_delta_does_not_collapse_temperature() {
        // A rejected/neutral move (Δ == 0) used to multiply the temperature
        // by |0| and pin it to the 1e-6 floor for the rest of the chain.
        assert_eq!(cooled_temperature(1500.0, 0.0, 2, 4), 1500.0);
        assert_eq!(cooled_temperature(1500.0, -0.0, 3, 4), 1500.0);
        assert_eq!(cooled_temperature(1500.0, f64::NAN, 2, 4), 1500.0);
        // A genuine non-zero delta still cools below the input.
        assert!(cooled_temperature(1500.0, 1.0, 2, 4) < 1500.0);
        // And the floor still applies to real cooling.
        assert!(cooled_temperature(1e-5, 1e-9, 2, 4) >= 1e-6);
    }

    #[test]
    fn neighbor_generation_preserves_function() {
        let aig = benchgen::adder(4).aig;
        let conv = saturated_conversion(&aig, 3);
        let (initial, _) = bottom_up_extract(&conv.egraph, ExtractionCost::Depth);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..5 {
            let neighbor = generate_neighbor(
                &conv.egraph,
                &conv.egraph.parent_index(),
                &initial,
                ExtractionCost::Depth,
                0.3,
                &mut rng,
            );
            let back = selection_to_aig(
                &conv.egraph,
                &neighbor,
                &conv.roots,
                &conv.input_names,
                &conv.output_names,
                "neighbor",
            );
            let res = check_equivalence(&aig, &back, &CecOptions::default());
            assert!(res.is_equivalent(), "{res:?}");
        }
    }

    #[test]
    fn sa_extraction_finds_valid_and_not_worse_solution() {
        let aig = benchgen::adder(5).aig;
        let conv = saturated_conversion(&aig, 3);
        let evaluator = TechMapCost::new(asap7_like());
        let extractor = SaExtractor::new(SaOptions::fast());
        let result = extractor.extract(&conv, &evaluator);
        assert!(result.best_cost <= result.initial_cost);
        assert!(check_equivalence(&aig, &result.best_aig, &CecOptions::default()).is_equivalent());
        assert_eq!(result.chains.len(), 2);
        for chain in &result.chains {
            assert_eq!(chain.accepted + chain.rejected, 2);
        }
    }

    #[test]
    fn deterministic_given_seed_and_single_thread() {
        let aig = benchgen::adder(4).aig;
        let conv = saturated_conversion(&aig, 2);
        let evaluator = TechMapCost::new(asap7_like());
        let options = SaOptions {
            threads: 1,
            iterations: 2,
            seed: 7,
            ..SaOptions::default()
        };
        let a = SaExtractor::new(options.clone()).extract(&conv, &evaluator);
        let b = SaExtractor::new(options).extract(&conv, &evaluator);
        assert_eq!(a.best_cost, b.best_cost);
        assert_eq!(a.chains[0].accepted, b.chains[0].accepted);
    }

    #[test]
    fn more_threads_never_hurt_best_cost() {
        let aig = benchgen::adder(4).aig;
        let conv = saturated_conversion(&aig, 3);
        let evaluator = TechMapCost::new(asap7_like());
        let single = SaExtractor::new(SaOptions {
            threads: 1,
            iterations: 2,
            seed: 3,
            ..SaOptions::default()
        })
        .extract(&conv, &evaluator);
        let quad = SaExtractor::new(SaOptions {
            threads: 4,
            iterations: 2,
            seed: 3,
            ..SaOptions::default()
        })
        .extract(&conv, &evaluator);
        // The single-thread chain is one of the four (same seed), so the
        // parallel best can only be equal or better.
        assert!(quad.best_cost <= single.best_cost + 1e-9);
    }
}
