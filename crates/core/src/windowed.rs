//! Windowed saturation orchestration: carve → saturate → stitch.
//!
//! A monolithic e-graph must hold the entire design, so the saturation
//! budgets of [`crate::flow::FlowConfig`] bite long before industrial sizes.
//! This module drives the [`window`] subsystem instead: the host AIG is
//! carved into reconvergence-bounded windows, every window is saturated as
//! an *independent* e-graph (each with serial search, so results are
//! bit-identical at any worker count — parallelism comes from racing whole
//! windows across the pool), and the per-window e-spaces are either
//!
//! * stitched into one global [`choices::ChoiceAig`] for choice-aware
//!   mapping ([`saturate_windows`], used by `emorphic_map_flow`), or
//! * committed window-by-window, keeping a window's extraction only when it
//!   shrinks the window cone ([`windowed_resynthesis`], used by
//!   `emorphic_flow`).
//!
//! Budgets are carved from the global configuration: the e-node limit and
//! the extraction budget are divided across windows (with a floor so tiny
//! shares stay useful), which is what makes the wall-clock cost grow with
//! the number of windows — linear in design size — instead of with the
//! superlinear cost of one giant e-graph.

use crate::convert::aig_to_egraph;
use crate::extract::{BottomUpEngine, ExtractBudget, ExtractionCost, ExtractionEngine};
use crate::flow::FlowConfig;
use crate::lang::BoolLang;
use crate::rules::all_rules;
use aig::{Aig, Lit, NodeId};
use choices::ChoiceConfig;
use egraph::{EGraph, Id, Runner, Scheduler};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use window::{
    partition, stitch, Partition, Stitched, Window, WindowChoiceSpace, WindowError, WindowOptions,
};

/// Floor for the per-window e-node budget: below this a window cannot even
/// hold its own cone plus a handful of rewrites.
const MIN_WINDOW_NODE_LIMIT: usize = 256;

/// Per-window statistics of a windowed saturation run, surfaced in the flow
/// results.
#[derive(Debug, Clone, Default)]
pub struct WindowReport {
    /// Windows the partitioner produced.
    pub windows: usize,
    /// Sum of window leaf counts (boundary width).
    pub total_leaves: usize,
    /// Host AND gates covered by window volumes.
    pub covered_ands: usize,
    /// Windows whose saturation or export produced nothing usable (their
    /// host logic is kept untouched).
    pub windows_skipped: usize,
    /// Windows whose committed extraction beat the original cone
    /// (committed path only).
    pub windows_resynthesized: usize,
    /// Wall-clock time of the partitioning pass.
    pub partition_time: Duration,
    /// Wall-clock time of per-window saturation (+ extraction/export).
    pub saturation_time: Duration,
    /// Wall-clock time of stitching (choice path) or host rebuild
    /// (committed path).
    pub stitch_time: Duration,
    /// Choice classes exported into the stitched network (choice path only).
    pub classes_exported: usize,
    /// Alternatives in the stitched network (choice path only).
    pub alternatives: usize,
    /// E-nodes summed over all window e-graphs after saturation.
    pub egraph_nodes: usize,
    /// E-classes summed over all window e-graphs after saturation.
    pub egraph_classes: usize,
    /// Set when the windowed path failed and the flow fell back to the
    /// monolithic path; the windowed result was NOT used.
    pub error: Option<String>,
}

/// Divides a global extraction budget evenly across `windows`.
fn carve_budget(global: &ExtractBudget, windows: usize) -> ExtractBudget {
    let n = windows.max(1) as u64;
    ExtractBudget {
        max_evaluations: global.max_evaluations.map(|e| (e / n).max(1_000)),
        time_limit: global
            .time_limit
            .map(|t| (t / windows.max(1) as u32).max(Duration::from_millis(50))),
    }
}

/// Divides the global e-node limit across `windows`, with a usable floor.
fn carve_node_limit(global: usize, windows: usize) -> usize {
    (global / windows.max(1)).max(MIN_WINDOW_NODE_LIMIT)
}

/// Interior nodes of `window` that become unreachable once its root is
/// redirected to a replacement: the root itself, plus (to a fixpoint) every
/// volume node that drives no primary output and whose AND consumers are all
/// dead already. Nodes claimed by an earlier committed window are excluded
/// from the result — they are already counted as removed — but still count
/// as dead consumers, since they will not keep anything alive. `protected`
/// nodes are never declared dead: the fanout lists only describe the
/// original host, and a committed replacement adds consumer edges to its
/// leaves that those lists cannot see, so leaves of committed windows must
/// stay out of later dead sets or the accounting overcounts.
fn dead_interior(
    window: &Window,
    fanout_lists: &[Vec<NodeId>],
    drives_output: &[bool],
    claimed: &aig::FxHashSet<NodeId>,
    protected: &aig::FxHashSet<NodeId>,
) -> Vec<NodeId> {
    let mut dead: aig::FxHashSet<NodeId> = aig::FxHashSet::default();
    dead.insert(window.root);
    loop {
        let mut changed = false;
        for &v in window.volume.iter().rev() {
            if v == window.root
                || dead.contains(&v)
                || claimed.contains(&v)
                || protected.contains(&v)
                || drives_output[v.index()]
            {
                continue;
            }
            let gone = fanout_lists[v.index()]
                .iter()
                .all(|c| dead.contains(c) || claimed.contains(c));
            if gone {
                dead.insert(v);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    dead.into_iter().collect()
}

/// Runs `count` window tasks on `threads` workers pulling from a shared
/// index. Results are stored by window index, so the outcome is independent
/// of scheduling order (and therefore of the worker count). `init` builds
/// per-worker state once (the rewrite-rule set is not cheap enough to build
/// per window).
fn run_windows<R, C, I, F>(count: usize, threads: usize, init: I, task: F) -> Vec<Option<R>>
where
    R: Send,
    I: Fn() -> C + Sync,
    F: Fn(usize, &C) -> Option<R> + Sync,
{
    let workers = threads.max(1).min(count.max(1));
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..count).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let ctx = init();
                loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= count {
                        break;
                    }
                    let out = task(idx, &ctx);
                    match results.lock() {
                        Ok(mut slots) => slots[idx] = out,
                        Err(mut poisoned) => poisoned.get_mut()[idx] = out,
                    }
                }
            });
        }
    });
    match results.into_inner() {
        Ok(slots) => slots,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The saturated e-graph of one window cone, with canonicalized roots and
/// the name context needed to convert back out.
struct SaturatedCone {
    egraph: EGraph<BoolLang>,
    roots: Vec<Id>,
    input_names: Vec<String>,
    output_names: Vec<String>,
    name: String,
}

/// Saturates one window cone with serial search (window-level parallelism
/// keeps the result thread-count independent).
fn saturate_cone(
    cone: &Aig,
    config: &FlowConfig,
    node_limit: usize,
    rules: &[egraph::Rewrite<BoolLang>],
) -> SaturatedCone {
    let conversion = aig_to_egraph(cone);
    let runner = Runner::with_egraph(conversion.egraph)
        .with_iter_limit(config.rewrite_iterations)
        .with_node_limit(node_limit)
        .with_scheduler(Scheduler::Backoff {
            match_limit: config.match_limit,
            ban_length: 2,
        })
        .with_search_threads(1)
        .run(rules);
    let egraph = runner.egraph;
    let roots = conversion.roots.iter().map(|&r| egraph.find(r)).collect();
    SaturatedCone {
        egraph,
        roots,
        input_names: conversion.input_names,
        output_names: conversion.output_names,
        name: conversion.name,
    }
}

/// Carve → saturate per window → export choice classes → stitch into one
/// global choice network (the `emorphic_map_flow` windowed path).
///
/// Windows whose export fails are skipped — their logic survives untouched
/// in the stitched host — and counted in the report.
///
/// # Errors
/// Propagates [`WindowError`] from partitioning (bad knobs) or stitching
/// (internal inconsistency); per-window saturation/export failures are
/// absorbed, not propagated.
pub fn saturate_windows(
    aig: &Aig,
    opts: &WindowOptions,
    config: &FlowConfig,
    choices: &ChoiceConfig,
) -> Result<(Stitched, Partition, WindowReport), WindowError> {
    let t_part = Instant::now();
    let part = partition(aig, opts)?;
    let mut report = WindowReport {
        windows: part.windows.len(),
        total_leaves: part.stats.total_leaves,
        covered_ands: part.stats.covered_ands,
        partition_time: t_part.elapsed(),
        ..WindowReport::default()
    };

    let node_limit = carve_node_limit(config.node_limit, part.windows.len());
    let t_sat = Instant::now();
    let results = run_windows(
        part.windows.len(),
        config.search_threads,
        all_rules,
        |i, rules| {
            let window = &part.windows[i];
            let sat = saturate_cone(&window.cone.aig, config, node_limit, rules);
            let exported = choices::egraph_to_choices(
                &sat.egraph,
                &sat.roots,
                &sat.input_names,
                &sat.output_names,
                &sat.name,
                choices,
            )
            .ok()?;
            Some((
                exported.0,
                sat.egraph.total_nodes(),
                sat.egraph.num_classes(),
            ))
        },
    );
    report.saturation_time = t_sat.elapsed();

    let mut spaces = Vec::new();
    for (i, result) in results.into_iter().enumerate() {
        match result {
            Some((network, nodes, classes)) => {
                report.egraph_nodes += nodes;
                report.egraph_classes += classes;
                spaces.push(WindowChoiceSpace {
                    window: i,
                    choices: network,
                });
            }
            None => report.windows_skipped += 1,
        }
    }

    let t_stitch = Instant::now();
    let stitched = stitch(aig, &part, &spaces)?;
    report.stitch_time = t_stitch.elapsed();
    report.classes_exported = stitched.stats.classes;
    report.alternatives = stitched.stats.alternatives;
    Ok((stitched, part, report))
}

/// Carve → saturate per window → extract per window → commit shrinking
/// replacements into a rebuilt host (the `emorphic_flow` windowed path).
///
/// A window's extraction is committed only when it strictly reduces the
/// window cone's AND count; everything else keeps the original structure,
/// so the result is never larger than the input.
///
/// # Errors
/// Propagates [`WindowError`] from partitioning or internal translation;
/// per-window extraction failures are absorbed (the window keeps its
/// original logic).
pub fn windowed_resynthesis(
    aig: &Aig,
    opts: &WindowOptions,
    config: &FlowConfig,
) -> Result<(Aig, Partition, WindowReport), WindowError> {
    let t_part = Instant::now();
    let part = partition(aig, opts)?;
    let mut report = WindowReport {
        windows: part.windows.len(),
        total_leaves: part.stats.total_leaves,
        covered_ands: part.stats.covered_ands,
        partition_time: t_part.elapsed(),
        ..WindowReport::default()
    };

    let node_limit = carve_node_limit(config.node_limit, part.windows.len());
    let budget = carve_budget(&config.extract_budget, part.windows.len());
    let t_sat = Instant::now();
    let results = run_windows(
        part.windows.len(),
        config.search_threads,
        all_rules,
        |i, rules| {
            let window = &part.windows[i];
            let sat = saturate_cone(&window.cone.aig, config, node_limit, rules);
            let engine = BottomUpEngine::new(ExtractionCost::Size);
            let extraction = engine.extract(&sat.egraph, &sat.roots, &budget).ok()?;
            let candidate = crate::convert::try_selection_to_aig(
                &sat.egraph,
                &extraction.selection,
                &sat.roots,
                &sat.input_names,
                &sat.output_names,
                &sat.name,
            )
            .ok()?
            .strash_copy();
            if candidate.num_ands() < window.cone.aig.num_ands() {
                Some((
                    candidate,
                    sat.egraph.total_nodes(),
                    sat.egraph.num_classes(),
                ))
            } else {
                None
            }
        },
    );
    report.saturation_time = t_sat.elapsed();

    // Greedy commit with exact dead-logic accounting. Windows overlap, so a
    // candidate that merely beats its own cone can still grow the host: the
    // cone's interior may stay alive through fanouts outside the window while
    // the replacement adds fresh nodes. A window commits only when its
    // replacement is smaller than the interior logic that provably dies once
    // the root is redirected, and a global claimed set keeps overlapping
    // windows from counting the same dying node twice. With each committed
    // window strictly net-negative, the rebuilt host never grows.
    let fanout_lists = aig.fanout_lists();
    let mut drives_output = vec![false; aig.num_nodes()];
    for out in aig.outputs() {
        drives_output[out.node().index()] = true;
    }
    let mut claimed: aig::FxHashSet<NodeId> = aig::FxHashSet::default();
    let mut live_leaves: aig::FxHashSet<NodeId> = aig::FxHashSet::default();
    let mut replacement_of: aig::FxHashMap<NodeId, Aig> = aig::FxHashMap::default();
    for (i, result) in results.into_iter().enumerate() {
        let Some((candidate, nodes, classes)) = result else {
            report.windows_skipped += 1;
            continue;
        };
        report.egraph_nodes += nodes;
        report.egraph_classes += classes;
        let w = &part.windows[i];
        // A replacement reads its leaves and redirects its root; neither may
        // be logic an earlier commit already counted as dead.
        if claimed.contains(&w.root) || w.leaves.iter().any(|l| claimed.contains(l)) {
            report.windows_skipped += 1;
            continue;
        }
        let dead = dead_interior(w, &fanout_lists, &drives_output, &claimed, &live_leaves);
        if candidate.num_ands() < dead.len() {
            claimed.extend(dead);
            live_leaves.extend(w.leaves.iter().copied());
            replacement_of.insert(w.root, candidate);
            report.windows_resynthesized += 1;
        } else {
            report.windows_skipped += 1;
        }
    }
    let window_of_root: aig::FxHashMap<NodeId, usize> =
        part.windows.iter().map(|w| (w.root, w.id)).collect();

    // Rebuild the host, substituting each committed window root with its
    // extracted cone (translated through the boundary table). Interior nodes
    // of replaced windows are still rebuilt — other fanouts may read them —
    // and the final cleanup drops whichever end up dangling.
    let t_rebuild = Instant::now();
    let mut g = Aig::new(aig.name());
    let mut table: Vec<Option<Lit>> = vec![None; aig.num_nodes()];
    table[NodeId::CONST.index()] = Some(Lit::FALSE);
    for (i, &input) in aig.inputs().iter().enumerate() {
        table[input.index()] = Some(g.add_input(aig.input_name(i)));
    }
    let translate = |lit: Lit, table: &[Option<Lit>]| -> Result<Lit, WindowError> {
        table[lit.node().index()]
            .map(|l| l.xor(lit.is_complemented()))
            .ok_or_else(|| {
                WindowError::Translation(format!(
                    "host node {} has no rebuilt literal yet",
                    lit.node()
                ))
            })
    };
    for id in aig.and_ids() {
        if let Some(replacement) = replacement_of.get(&id) {
            let window = &part.windows[window_of_root[&id]];
            let mut leaf_lits = Vec::with_capacity(window.leaves.len());
            for &leaf in &window.leaves {
                leaf_lits.push(translate(leaf.lit(), &table)?);
            }
            // `copy_logic_into` returns the node map of the replacement;
            // translate its (single) output literal through it.
            let map = replacement.copy_logic_into(&mut g, &leaf_lits);
            let out = replacement.outputs().first().copied().ok_or_else(|| {
                WindowError::Translation(format!(
                    "window {} replacement produced no output",
                    window.id
                ))
            })?;
            table[id.index()] = Some(map[out.node().index()].xor(out.is_complemented()));
        } else {
            let (f0, f1) = aig.fanins(id);
            let a = translate(f0, &table)?;
            let b = translate(f1, &table)?;
            table[id.index()] = Some(g.and(a, b));
        }
    }
    for (i, out) in aig.outputs().iter().enumerate() {
        let lit = translate(*out, &table)?;
        g.add_output(lit, aig.output_name(i));
    }
    let rebuilt = g.cleanup();
    report.stitch_time = t_rebuild.elapsed();
    Ok((rebuilt, part, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cec::{check_equivalence, CecOptions};

    #[test]
    fn windowed_resynthesis_preserves_function_and_never_grows() {
        let circuit = benchgen::adder(8).aig;
        let config = FlowConfig::fast();
        let (rebuilt, part, report) =
            windowed_resynthesis(&circuit, &WindowOptions::default(), &config).unwrap();
        assert!(!part.windows.is_empty());
        assert_eq!(report.windows, part.windows.len());
        assert!(rebuilt.num_ands() <= circuit.num_ands());
        let check = check_equivalence(&circuit, &rebuilt, &CecOptions::default());
        assert!(check.is_equivalent(), "{check:?}");
    }

    #[test]
    fn saturate_windows_produces_verified_stitch() {
        let circuit = benchgen::multiplier(4).aig;
        let config = FlowConfig::fast();
        let (stitched, part, report) = saturate_windows(
            &circuit,
            &WindowOptions::default(),
            &config,
            &ChoiceConfig::default(),
        )
        .unwrap();
        assert_eq!(report.windows, part.windows.len());
        assert!(report.egraph_nodes > 0);
        // The stitched representative network is the rebuilt host.
        let repr = stitched.network.repr_network();
        let check = check_equivalence(&circuit, &repr, &CecOptions::default());
        assert!(check.is_equivalent(), "{check:?}");
    }

    #[test]
    fn window_results_are_thread_count_independent() {
        let circuit = benchgen::multiplier(4).aig;
        let serial = FlowConfig {
            search_threads: 1,
            ..FlowConfig::fast()
        };
        let parallel = FlowConfig {
            search_threads: 4,
            ..FlowConfig::fast()
        };
        let (s1, p1, r1) = saturate_windows(
            &circuit,
            &WindowOptions::default(),
            &serial,
            &ChoiceConfig::default(),
        )
        .unwrap();
        let (s4, p4, r4) = saturate_windows(
            &circuit,
            &WindowOptions::default(),
            &parallel,
            &ChoiceConfig::default(),
        )
        .unwrap();
        assert_eq!(p1.windows.len(), p4.windows.len());
        for (a, b) in p1.windows.iter().zip(&p4.windows) {
            assert_eq!(a.root, b.root);
            assert_eq!(a.leaves, b.leaves);
            assert_eq!(a.volume, b.volume);
        }
        assert_eq!(r1.egraph_nodes, r4.egraph_nodes);
        assert_eq!(r1.egraph_classes, r4.egraph_classes);
        assert_eq!(s1.network.aig().num_nodes(), s4.network.aig().num_nodes());
        assert_eq!(s1.network.num_classes(), s4.network.num_classes());
        assert_eq!(s1.stats, s4.stats);

        let (c1, _, _) =
            windowed_resynthesis(&circuit, &WindowOptions::default(), &serial).unwrap();
        let (c4, _, _) =
            windowed_resynthesis(&circuit, &WindowOptions::default(), &parallel).unwrap();
        assert_eq!(c1.num_nodes(), c4.num_nodes());
        assert_eq!(c1.num_ands(), c4.num_ands());
        assert_eq!(c1.outputs(), c4.outputs());
    }

    #[test]
    fn budget_carving_has_floors() {
        let carved = carve_budget(
            &ExtractBudget::unlimited()
                .with_max_evaluations(10_000)
                .with_time_limit(Duration::from_millis(100)),
            1_000,
        );
        assert_eq!(carved.max_evaluations, Some(1_000));
        assert_eq!(carved.time_limit, Some(Duration::from_millis(50)));
        assert_eq!(carve_node_limit(20_000, 1_000), MIN_WINDOW_NODE_LIMIT);
        assert_eq!(carve_node_limit(20_000, 4), 5_000);
        // Unlimited budgets stay unlimited.
        let unlimited = carve_budget(&ExtractBudget::unlimited(), 8);
        assert_eq!(unlimited.max_evaluations, None);
        assert_eq!(unlimited.time_limit, None);
    }
}
