//! The Boolean term language used inside E-morphic's e-graphs.

use choices::{BoolExpr, BoolNode};
use egraph::{FromOp, Id, Language, ParseError, RecExpr};

/// A Boolean operator node.
///
/// The language mirrors the equation format the flows exchange with the
/// conventional synthesis passes: constants, primary-input variables,
/// negation, conjunction and disjunction. (XOR and richer operators are
/// expressible as trees over these and are discovered by rewriting.)
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BoolLang {
    /// A Boolean constant.
    Const(bool),
    /// A primary input, identified by its index in the source circuit.
    Var(u32),
    /// Logical negation.
    Not(Id),
    /// Conjunction.
    And([Id; 2]),
    /// Disjunction.
    Or([Id; 2]),
}

impl BoolLang {
    /// Convenience constructor for an AND node.
    pub fn and(a: Id, b: Id) -> Self {
        BoolLang::And([a, b])
    }

    /// Convenience constructor for an OR node.
    pub fn or(a: Id, b: Id) -> Self {
        BoolLang::Or([a, b])
    }

    /// Returns `true` for leaf nodes (constants and variables).
    pub fn is_leaf_node(&self) -> bool {
        matches!(self, BoolLang::Const(_) | BoolLang::Var(_))
    }
}

impl Language for BoolLang {
    fn children(&self) -> &[Id] {
        match self {
            BoolLang::Const(_) | BoolLang::Var(_) => &[],
            BoolLang::Not(child) => std::slice::from_ref(child),
            BoolLang::And(children) | BoolLang::Or(children) => children,
        }
    }

    fn children_mut(&mut self) -> &mut [Id] {
        match self {
            BoolLang::Const(_) | BoolLang::Var(_) => &mut [],
            BoolLang::Not(child) => std::slice::from_mut(child),
            BoolLang::And(children) | BoolLang::Or(children) => children,
        }
    }

    fn matches(&self, other: &Self) -> bool {
        match (self, other) {
            (BoolLang::Const(a), BoolLang::Const(b)) => a == b,
            (BoolLang::Var(a), BoolLang::Var(b)) => a == b,
            (BoolLang::Not(_), BoolLang::Not(_)) => true,
            (BoolLang::And(_), BoolLang::And(_)) => true,
            (BoolLang::Or(_), BoolLang::Or(_)) => true,
            _ => false,
        }
    }

    fn op_str(&self) -> String {
        match self {
            BoolLang::Const(false) => "false".to_string(),
            BoolLang::Const(true) => "true".to_string(),
            BoolLang::Var(index) => format!("x{index}"),
            BoolLang::Not(_) => "!".to_string(),
            BoolLang::And(_) => "&".to_string(),
            BoolLang::Or(_) => "|".to_string(),
        }
    }

    fn op_key(&self) -> u64 {
        // Allocation-free discriminator for the e-graph's operator index.
        // `matches` distinguishes constants by value and variables by index,
        // so the key must too; the ranges below cannot collide.
        match self {
            BoolLang::Not(_) => 1,
            BoolLang::And(_) => 2,
            BoolLang::Or(_) => 3,
            BoolLang::Const(b) => 0x10 | u64::from(*b),
            BoolLang::Var(index) => 0x100 + u64::from(*index),
        }
    }
}

impl BoolNode for BoolLang {
    fn as_bool(&self) -> Option<BoolExpr> {
        Some(match *self {
            BoolLang::Const(b) => BoolExpr::Const(b),
            BoolLang::Var(i) => BoolExpr::Var(i),
            BoolLang::Not(c) => BoolExpr::Not(c),
            BoolLang::And([a, b]) => BoolExpr::And(a, b),
            BoolLang::Or([a, b]) => BoolExpr::Or(a, b),
        })
    }
}

impl FromOp for BoolLang {
    fn from_op(op: &str, children: Vec<Id>) -> Result<Self, ParseError> {
        let arity = |expected: usize| -> Result<(), ParseError> {
            if children.len() == expected {
                Ok(())
            } else {
                Err(ParseError(format!(
                    "operator '{op}' expects {expected} children, got {}",
                    children.len()
                )))
            }
        };
        match op {
            "&" | "*" | "and" | "AND" => {
                arity(2)?;
                Ok(BoolLang::And([children[0], children[1]]))
            }
            "|" | "+" | "or" | "OR" => {
                arity(2)?;
                Ok(BoolLang::Or([children[0], children[1]]))
            }
            "!" | "~" | "not" | "NOT" => {
                arity(1)?;
                Ok(BoolLang::Not(children[0]))
            }
            "true" | "1" => {
                arity(0)?;
                Ok(BoolLang::Const(true))
            }
            "false" | "0" => {
                arity(0)?;
                Ok(BoolLang::Const(false))
            }
            var if var.starts_with('x')
                && var[1..].chars().all(|c| c.is_ascii_digit())
                && var.len() > 1 =>
            {
                arity(0)?;
                Ok(BoolLang::Var(var[1..].parse().map_err(|_| {
                    ParseError(format!("bad variable index in '{var}'"))
                })?))
            }
            other => Err(ParseError(format!("unknown Boolean operator '{other}'"))),
        }
    }
}

/// Evaluates a [`RecExpr`] over the Boolean language on a variable assignment
/// (`inputs[i]` is the value of `Var(i)`).
pub fn eval_expr(expr: &RecExpr<BoolLang>, inputs: &[bool]) -> bool {
    let mut values: Vec<bool> = Vec::with_capacity(expr.len());
    for node in expr.as_ref() {
        let value = match node {
            BoolLang::Const(b) => *b,
            BoolLang::Var(i) => inputs[*i as usize],
            BoolLang::Not(c) => !values[c.index()],
            BoolLang::And([a, b]) => values[a.index()] && values[b.index()],
            BoolLang::Or([a, b]) => values[a.index()] || values[b.index()],
        };
        values.push(value);
    }
    *values
        .last()
        .unwrap_or_else(|| unreachable!("non-empty expression"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_print() {
        let expr: RecExpr<BoolLang> = "(| (& x0 x1) (! x2))".parse().unwrap();
        assert_eq!(expr.to_string(), "(| (& x0 x1) (! x2))");
        assert_eq!(expr.len(), 6);
    }

    #[test]
    fn parse_alternative_spellings() {
        let a: RecExpr<BoolLang> = "(+ (* x0 x1) (~ x2))".parse().unwrap();
        let b: RecExpr<BoolLang> = "(or (and x0 x1) (not x2))".parse().unwrap();
        assert_eq!(a.as_ref(), b.as_ref());
        let consts: RecExpr<BoolLang> = "(& 1 0)".parse().unwrap();
        assert!(!eval_expr(&consts, &[]));
    }

    #[test]
    fn parse_errors() {
        assert!("(& x0)".parse::<RecExpr<BoolLang>>().is_err());
        assert!("(! x0 x1)".parse::<RecExpr<BoolLang>>().is_err());
        assert!("(foo x0 x1)".parse::<RecExpr<BoolLang>>().is_err());
        assert!("xabc".parse::<RecExpr<BoolLang>>().is_err());
    }

    #[test]
    fn evaluation_matches_semantics() {
        let expr: RecExpr<BoolLang> = "(| (& x0 x1) (! x2))".parse().unwrap();
        for p in 0..8usize {
            let bits = [(p & 1) != 0, (p & 2) != 0, (p & 4) != 0];
            let expected = (bits[0] && bits[1]) || !bits[2];
            assert_eq!(eval_expr(&expr, &bits), expected, "pattern {p}");
        }
    }

    #[test]
    fn matches_distinguishes_leaf_identity() {
        use egraph::Language;
        assert!(BoolLang::Var(3).matches(&BoolLang::Var(3)));
        assert!(!BoolLang::Var(3).matches(&BoolLang::Var(4)));
        assert!(!BoolLang::Const(true).matches(&BoolLang::Const(false)));
        assert!(BoolLang::and(Id(0), Id(1)).matches(&BoolLang::and(Id(5), Id(6))));
        assert!(!BoolLang::and(Id(0), Id(1)).matches(&BoolLang::or(Id(0), Id(1))));
    }

    #[test]
    fn leaf_detection() {
        assert!(BoolLang::Const(true).is_leaf_node());
        assert!(BoolLang::Var(0).is_leaf_node());
        assert!(!BoolLang::Not(Id(0)).is_leaf_node());
    }
}
