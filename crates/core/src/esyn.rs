//! The E-Syn-style S-expression conversion baseline (for Table III).
//!
//! E-Syn [DAC'24] converts the circuit to an equation, flattens it into an
//! S-expression (a tree), and hands that to the e-graph library. Because the
//! flattening duplicates every shared node, the representation grows
//! exponentially with reconvergent sharing; the paper's Table III shows this
//! conversion timing out (3600 s) or exhausting 8 GB on every large EPFL
//! circuit. This module reproduces that baseline faithfully — including its
//! blow-up — with configurable budget limits so the comparison can be run
//! safely inside the benchmark harness.

use crate::lang::BoolLang;
use aig::{Aig, AigNode, NodeId};
use egraph::{EGraph, Id, RecExpr};
use std::time::{Duration, Instant};

/// Resource limits for the baseline conversion.
#[derive(Debug, Clone, Copy)]
pub struct EsynLimits {
    /// Maximum number of tree nodes to materialize before giving up
    /// (stand-in for the paper's 8 GB memory limit).
    pub max_tree_nodes: u64,
    /// Wall-clock limit (stand-in for the paper's 3600 s timeout).
    pub time_limit: Duration,
}

impl Default for EsynLimits {
    fn default() -> Self {
        EsynLimits {
            max_tree_nodes: 2_000_000,
            time_limit: Duration::from_secs(10),
        }
    }
}

/// Why the baseline conversion failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EsynFailure {
    /// The flattened tree exceeded the node budget ("out of memory").
    MemoryOut {
        /// Number of tree nodes materialized before aborting.
        nodes_built: u64,
    },
    /// The conversion exceeded the time budget.
    TimeOut,
}

impl std::fmt::Display for EsynFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EsynFailure::MemoryOut { nodes_built } => {
                write!(f, "MO (tree exceeded budget after {nodes_built} nodes)")
            }
            EsynFailure::TimeOut => write!(f, "TO"),
        }
    }
}

/// Result of a successful baseline forward conversion.
#[derive(Debug, Clone)]
pub struct EsynConversion {
    /// The e-graph built from the flattened trees.
    pub egraph: EGraph<BoolLang>,
    /// Root class per primary output.
    pub roots: Vec<Id>,
    /// Total number of S-expression tree nodes that were materialized.
    pub tree_nodes: u64,
    /// Forward conversion time.
    pub forward_time: Duration,
}

/// Computes the S-expression (tree) size the flattened circuit would have,
/// without materializing it. Saturates at `u64::MAX`.
pub fn flattened_tree_size(aig: &Aig) -> u64 {
    let mut sizes = vec![0u64; aig.num_nodes()];
    for id in aig.node_ids() {
        sizes[id.index()] = match aig.node(id) {
            AigNode::Const | AigNode::Input { .. } => 1,
            AigNode::And { fanin0, fanin1 } => {
                let mut total = 1u64;
                for lit in [fanin0, fanin1] {
                    let child = sizes[lit.node().index()];
                    // A complemented edge costs an extra NOT tree node.
                    let child = child.saturating_add(u64::from(lit.is_complemented()));
                    total = total.saturating_add(child);
                }
                total
            }
        };
    }
    aig.outputs()
        .iter()
        .map(|po| sizes[po.node().index()].saturating_add(u64::from(po.is_complemented())))
        .fold(0u64, |acc, s| acc.saturating_add(s))
}

/// Flattens one output cone into a tree-shaped [`RecExpr`], duplicating
/// shared nodes (the E-Syn representation), subject to the given limits.
fn flatten_output(
    aig: &Aig,
    output: usize,
    limits: &EsynLimits,
    start: Instant,
    budget_used: &mut u64,
) -> Result<RecExpr<BoolLang>, EsynFailure> {
    let mut expr = RecExpr::default();

    fn rec(
        aig: &Aig,
        node: NodeId,
        complemented: bool,
        expr: &mut RecExpr<BoolLang>,
        limits: &EsynLimits,
        start: &Instant,
        budget_used: &mut u64,
    ) -> Result<Id, EsynFailure> {
        if *budget_used > limits.max_tree_nodes {
            return Err(EsynFailure::MemoryOut {
                nodes_built: *budget_used,
            });
        }
        if (*budget_used).is_multiple_of(4096) && start.elapsed() > limits.time_limit {
            return Err(EsynFailure::TimeOut);
        }
        let base = match aig.node(node) {
            AigNode::Const => {
                *budget_used += 1;
                expr.add(BoolLang::Const(false))
            }
            AigNode::Input { index } => {
                *budget_used += 1;
                expr.add(BoolLang::Var(*index))
            }
            AigNode::And { fanin0, fanin1 } => {
                let a = rec(
                    aig,
                    fanin0.node(),
                    fanin0.is_complemented(),
                    expr,
                    limits,
                    start,
                    budget_used,
                )?;
                let b = rec(
                    aig,
                    fanin1.node(),
                    fanin1.is_complemented(),
                    expr,
                    limits,
                    start,
                    budget_used,
                )?;
                *budget_used += 1;
                expr.add(BoolLang::And([a, b]))
            }
        };
        if complemented {
            *budget_used += 1;
            Ok(expr.add(BoolLang::Not(base)))
        } else {
            Ok(base)
        }
    }

    let po = aig.outputs()[output];
    rec(
        aig,
        po.node(),
        po.is_complemented(),
        &mut expr,
        limits,
        &start,
        budget_used,
    )?;
    Ok(expr)
}

/// The E-Syn-style forward conversion: flatten every output into an
/// S-expression tree and add the trees to an e-graph.
///
/// # Errors
/// Returns an [`EsynFailure`] when the node budget or the time budget is
/// exceeded (the common case for the larger benchmark circuits).
pub fn esyn_forward(aig: &Aig, limits: &EsynLimits) -> Result<EsynConversion, EsynFailure> {
    let start = Instant::now();
    let mut egraph: EGraph<BoolLang> = EGraph::new();
    let mut roots = Vec::with_capacity(aig.num_outputs());
    let mut budget_used = 0u64;
    for output in 0..aig.num_outputs() {
        let expr = flatten_output(aig, output, limits, start, &mut budget_used)?;
        roots.push(egraph.add_expr(&expr));
        if start.elapsed() > limits.time_limit {
            return Err(EsynFailure::TimeOut);
        }
    }
    // The forward conversion only adds (never unions), so the incremental
    // e-graph is already clean: this rebuild drains an empty worklist in
    // O(1) and the roots are already canonical.
    egraph.rebuild();
    debug_assert!(!egraph.is_dirty());
    let roots = roots.into_iter().map(|r| egraph.find(r)).collect();
    Ok(EsynConversion {
        egraph,
        roots,
        tree_nodes: budget_used,
        forward_time: start.elapsed(),
    })
}

/// The E-Syn-style backward conversion: extract a tree per output and rebuild
/// the circuit from the trees (duplicating shared logic again).
///
/// # Errors
/// Returns an [`EsynFailure`] if the extracted trees exceed the limits.
pub fn esyn_backward(
    conversion: &EsynConversion,
    input_names: &[String],
    output_names: &[String],
    limits: &EsynLimits,
) -> Result<(Aig, Duration), EsynFailure> {
    use crate::extract::{BottomUpEngine, ExtractBudget, ExtractionCost, ExtractionEngine};
    let start = Instant::now();
    let extraction = BottomUpEngine::new(ExtractionCost::Size)
        .extract(
            &conversion.egraph,
            &conversion.roots,
            &ExtractBudget::unlimited(),
        )
        .unwrap_or_else(|_| unreachable!("forward conversion adds a concrete term per root"));
    let mut aig = Aig::new("esyn_backward");
    let inputs: Vec<aig::Lit> = input_names
        .iter()
        .map(|n| aig.add_input(n.clone()))
        .collect();
    let mut built = 0u64;
    for (root, name) in conversion.roots.iter().zip(output_names) {
        let expr = extraction.selection.to_recexpr(&conversion.egraph, *root);
        // Tree-expand the extracted term output by output.
        let mut lits: Vec<aig::Lit> = Vec::with_capacity(expr.len());
        for node in expr.as_ref() {
            built += 1;
            if built > limits.max_tree_nodes {
                return Err(EsynFailure::MemoryOut { nodes_built: built });
            }
            if built.is_multiple_of(4096) && start.elapsed() > limits.time_limit {
                return Err(EsynFailure::TimeOut);
            }
            let lit = match node {
                BoolLang::Const(b) => {
                    if *b {
                        aig::Lit::TRUE
                    } else {
                        aig::Lit::FALSE
                    }
                }
                BoolLang::Var(i) => inputs[*i as usize],
                BoolLang::Not(c) => lits[c.index()].not(),
                BoolLang::And([a, b]) => aig.and(lits[a.index()], lits[b.index()]),
                BoolLang::Or([a, b]) => aig.or(lits[a.index()], lits[b.index()]),
            };
            lits.push(lit);
        }
        let root = *lits.last().unwrap_or_else(|| unreachable!("non-empty"));
        aig.add_output(root, name.clone());
    }
    Ok((aig.cleanup(), start.elapsed()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_circuit_converts_and_roundtrips() {
        let aig = benchgen::adder(3).aig;
        let limits = EsynLimits::default();
        let conv = esyn_forward(&aig, &limits).expect("small circuit fits");
        assert!(conv.tree_nodes >= aig.num_ands() as u64);
        let (back, _) = esyn_backward(&conv, aig.input_names(), aig.output_names(), &limits)
            .expect("backward fits");
        for p in 0..(1usize << aig.num_inputs()) {
            let bits: Vec<bool> = (0..aig.num_inputs()).map(|i| p >> i & 1 == 1).collect();
            assert_eq!(aig.evaluate(&bits), back.evaluate(&bits), "pattern {p}");
        }
    }

    #[test]
    fn tree_size_explodes_on_reconvergent_logic() {
        // A ripple-carry adder has deep reconvergence: the flattened tree is
        // exponentially larger than the DAG.
        let small = benchgen::adder(8).aig;
        let large = benchgen::adder(24).aig;
        let dag_ratio = large.num_ands() as f64 / small.num_ands() as f64;
        let tree_ratio = flattened_tree_size(&large) as f64 / flattened_tree_size(&small) as f64;
        assert!(
            tree_ratio > dag_ratio * 10.0,
            "tree growth {tree_ratio} should far outpace DAG growth {dag_ratio}"
        );
    }

    #[test]
    fn node_budget_reports_memory_out() {
        let aig = benchgen::multiplier(8).aig;
        let limits = EsynLimits {
            max_tree_nodes: 1_000,
            time_limit: Duration::from_secs(60),
        };
        match esyn_forward(&aig, &limits) {
            Err(EsynFailure::MemoryOut { nodes_built }) => assert!(nodes_built >= 1_000),
            other => panic!("expected memory-out, got {other:?}"),
        }
    }

    #[test]
    fn time_budget_reports_timeout() {
        let aig = benchgen::multiplier(10).aig;
        let limits = EsynLimits {
            max_tree_nodes: u64::MAX,
            time_limit: Duration::from_millis(0),
        };
        match esyn_forward(&aig, &limits) {
            Err(EsynFailure::TimeOut) | Err(EsynFailure::MemoryOut { .. }) => {}
            other => panic!("expected a failure, got {other:?}"),
        }
    }

    #[test]
    fn failure_display_matches_paper_vocabulary() {
        assert_eq!(EsynFailure::TimeOut.to_string(), "TO");
        assert!(EsynFailure::MemoryOut { nodes_built: 5 }
            .to_string()
            .starts_with("MO"));
    }
}
