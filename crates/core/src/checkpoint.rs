//! Checkpoint/restore of a saturated e-graph.
//!
//! A [`FlowCheckpoint`] snapshots the product of the (dominant) saturation
//! phase — the e-graph, its roots, and the circuit interface — through the
//! hardened [`egraph::serialize`] layer. One expensive saturation can then
//! be restored any number of times and re-extracted / re-mapped under
//! different [`crate::ExtractorKind`] / cost-function / delay-target knobs,
//! which is what the synthesis server's checkpoint store amortizes.

use crate::flow::SaturatedState;
use crate::lang::BoolLang;
use egraph::serialize::{from_serialized, to_serialized, SerializedEGraph};
use egraph::ParseError;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// A serializable snapshot of a [`SaturatedState`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowCheckpoint {
    /// Design name.
    pub name: String,
    /// Primary-input names (`x<i>` in the e-graph corresponds to entry `i`).
    pub inputs: Vec<String>,
    /// Primary-output names, aligned with `egraph.roots`.
    pub outputs: Vec<String>,
    /// The saturated e-graph, with the output classes as roots.
    pub egraph: SerializedEGraph,
}

impl FlowCheckpoint {
    /// Snapshots a saturated state.
    pub fn capture(state: &SaturatedState) -> Self {
        FlowCheckpoint {
            name: state.name.clone(),
            inputs: state.input_names.clone(),
            outputs: state.output_names.clone(),
            egraph: to_serialized(&state.egraph, &state.roots),
        }
    }

    /// Rebuilds the saturated state this checkpoint was captured from.
    ///
    /// The restored e-graph preserves all class partitions and root
    /// equivalences of the original (pinned by the round-trip proptest), so
    /// every extraction engine sees the same choice space. Saturation
    /// reports and timings are not part of the snapshot: the restored
    /// state's `saturation` is empty, its `stop_reason` is `None`, and its
    /// timings are zero.
    ///
    /// # Errors
    /// Returns a [`ParseError`] if the snapshot fails validation or cannot
    /// be reconstructed.
    pub fn restore(&self) -> Result<SaturatedState, ParseError> {
        let (egraph, _map, roots) = from_serialized::<BoolLang>(&self.egraph)?;
        Ok(SaturatedState {
            egraph,
            roots,
            name: self.name.clone(),
            input_names: self.inputs.clone(),
            output_names: self.outputs.clone(),
            saturation: Vec::new(),
            stop_reason: None,
            conversion_time: Duration::ZERO,
            saturation_time: Duration::ZERO,
        })
    }

    /// Serializes the checkpoint to JSON text.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self)
            .unwrap_or_else(|_| unreachable!("checkpoint serialization cannot fail"))
    }

    /// Parses a checkpoint from JSON text, validating the embedded snapshot.
    ///
    /// # Errors
    /// Returns a [`ParseError`] for malformed JSON or an invalid snapshot.
    pub fn from_json(text: &str) -> Result<Self, ParseError> {
        let parsed: Self = serde_json::from_str(text).map_err(|e| ParseError(e.to_string()))?;
        parsed.egraph.validate()?;
        Ok(parsed)
    }

    /// Number of e-nodes stored in the checkpoint.
    pub fn num_enodes(&self) -> usize {
        self.egraph.num_nodes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{extract_network, saturate_network, FlowConfig};

    #[test]
    fn checkpoint_roundtrips_and_reextracts() {
        let aig = benchgen::adder(4).aig;
        let config = FlowConfig::fast();
        let state = saturate_network(&aig, &config);
        let checkpoint = FlowCheckpoint::capture(&state);

        let json = checkpoint.to_json();
        let back = FlowCheckpoint::from_json(&json).unwrap();
        assert_eq!(checkpoint, back);

        let restored = back.restore().unwrap();
        assert_eq!(restored.egraph.num_classes(), state.egraph.num_classes());
        assert_eq!(restored.egraph.total_nodes(), state.egraph.total_nodes());
        assert_eq!(restored.roots.len(), state.roots.len());

        // Extraction from the restored state produces a functioning network.
        let (extracted, _reports) = extract_network(&restored, &config);
        let extracted = extracted.expect("extraction from restored state");
        for p in 0..(1usize << aig.num_inputs()) {
            let bits: Vec<bool> = (0..aig.num_inputs()).map(|i| p >> i & 1 == 1).collect();
            assert_eq!(
                aig.evaluate(&bits),
                extracted.evaluate(&bits),
                "pattern {p}"
            );
        }
    }

    #[test]
    fn corrupt_checkpoint_is_rejected() {
        let aig = benchgen::adder(3).aig;
        let state = saturate_network(&aig, &FlowConfig::fast());
        let checkpoint = FlowCheckpoint::capture(&state);
        let mut bad = checkpoint.clone();
        bad.egraph.roots.push(99_999);
        assert!(FlowCheckpoint::from_json(&bad.to_json()).is_err());
    }
}
