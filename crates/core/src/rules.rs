//! Boolean rewrite rules (paper Table I plus standard auxiliary identities).
//!
//! All rules are sound Boolean identities; applying them with equality
//! saturation only *adds* equivalent structures to the e-graph, which is what
//! gives E-morphic its structural-exploration power. The default E-morphic
//! configuration runs these for a small number of iterations (5 in the
//! paper) rather than to saturation.

use crate::lang::BoolLang;
use egraph::Rewrite;

fn rule(name: &str, lhs: &str, rhs: &str) -> Rewrite<BoolLang> {
    // A malformed built-in rule is a programming error caught by the unit
    // tests that instantiate every rule table.
    #[allow(clippy::panic)]
    Rewrite::parse(name, lhs, rhs).unwrap_or_else(|e| panic!("rule {name} failed to parse: {e}"))
}

/// The rewrite rules listed in Table I of the paper: commutativity,
/// associativity, distributivity, consensus and De Morgan.
pub fn table1_rules() -> Vec<Rewrite<BoolLang>> {
    vec![
        // Commutativity.
        rule("comm-and", "(& ?a ?b)", "(& ?b ?a)"),
        rule("comm-or", "(| ?a ?b)", "(| ?b ?a)"),
        // Associativity.
        rule("assoc-and", "(& (& ?a ?b) ?c)", "(& ?a (& ?b ?c))"),
        rule("assoc-and-rev", "(& ?a (& ?b ?c))", "(& (& ?a ?b) ?c)"),
        rule("assoc-or", "(| (| ?a ?b) ?c)", "(| ?a (| ?b ?c))"),
        rule("assoc-or-rev", "(| ?a (| ?b ?c))", "(| (| ?a ?b) ?c)"),
        // Distributivity (both factorings).
        rule(
            "distribute-and",
            "(& ?a (| ?b ?c))",
            "(| (& ?a ?b) (& ?a ?c))",
        ),
        rule("factor-and", "(| (& ?a ?b) (& ?a ?c))", "(& ?a (| ?b ?c))"),
        rule(
            "distribute-or",
            "(| ?a (& ?b ?c))",
            "(& (| ?a ?b) (| ?a ?c))",
        ),
        rule("factor-or", "(& (| ?a ?b) (| ?a ?c))", "(| ?a (& ?b ?c))"),
        // Consensus.
        rule(
            "consensus-sop",
            "(| (| (& ?a ?b) (& (! ?a) ?c)) (& ?b ?c))",
            "(| (& ?a ?b) (& (! ?a) ?c))",
        ),
        rule(
            "consensus-pos",
            "(& (& (| ?a ?b) (| (! ?a) ?c)) (| ?b ?c))",
            "(& (| ?a ?b) (| (! ?a) ?c))",
        ),
        // De Morgan.
        rule("demorgan-and", "(! (& ?a ?b))", "(| (! ?a) (! ?b))"),
        rule("demorgan-or", "(! (| ?a ?b))", "(& (! ?a) (! ?b))"),
    ]
}

/// Auxiliary simplification rules: identity/annihilator constants,
/// idempotence, complementation, absorption and double negation. These keep
/// the e-graph from filling up with trivially reducible terms and let the
/// extractor find genuinely smaller circuits.
pub fn simplification_rules() -> Vec<Rewrite<BoolLang>> {
    vec![
        rule("and-true", "(& ?a true)", "?a"),
        rule("and-false", "(& ?a false)", "false"),
        rule("or-false", "(| ?a false)", "?a"),
        rule("or-true", "(| ?a true)", "true"),
        rule("and-idempotent", "(& ?a ?a)", "?a"),
        rule("or-idempotent", "(| ?a ?a)", "?a"),
        rule("and-complement", "(& ?a (! ?a))", "false"),
        rule("or-complement", "(| ?a (! ?a))", "true"),
        rule("absorb-and", "(& ?a (| ?a ?b))", "?a"),
        rule("absorb-or", "(| ?a (& ?a ?b))", "?a"),
        rule("double-negation", "(! (! ?a))", "?a"),
        rule("demorgan-and-rev", "(| (! ?a) (! ?b))", "(! (& ?a ?b))"),
        rule("demorgan-or-rev", "(& (! ?a) (! ?b))", "(! (| ?a ?b))"),
    ]
}

/// The full rule set used by the E-morphic flow.
pub fn all_rules() -> Vec<Rewrite<BoolLang>> {
    let mut rules = table1_rules();
    rules.extend(simplification_rules());
    rules
}

/// A deterministic 64-bit identifier of [`all_rules`]: a hash of every
/// rule's name and both pattern spellings, in order. It changes whenever a
/// rule is added, removed, renamed, reordered or edited, so content-addressed
/// caches keyed on it can never serve results across rule-set revisions.
/// Fixed mixing constants (no per-process hasher seeds) keep the id stable
/// across runs and machines.
pub fn rule_set_id() -> u64 {
    const K: u64 = 0x517c_c1b7_2722_0a95;
    let mut acc: u64 = all_rules().len() as u64;
    let mut mix = |s: &str| {
        for b in s.as_bytes() {
            acc = (acc.rotate_left(5) ^ u64::from(*b)).wrapping_mul(K);
        }
        acc = (acc.rotate_left(5) ^ 0xff).wrapping_mul(K);
    };
    for rw in all_rules() {
        mix(&rw.name);
        mix(&rw.lhs.to_string());
        mix(&rw.rhs.to_string());
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::eval_expr;
    use egraph::{AstSize, Extractor, RecExpr, Runner, Scheduler};

    /// Every rule must be a sound Boolean identity: check LHS == RHS by
    /// substituting all assignments of concrete variables for the pattern
    /// variables (up to 3 pattern variables per rule).
    #[test]
    fn every_rule_is_a_boolean_identity() {
        for rw in all_rules() {
            let vars = rw.lhs.vars();
            assert!(vars.len() <= 3, "rule {} uses too many variables", rw.name);
            // Instantiate pattern variables with concrete inputs x0, x1, x2.
            let lhs_str = pattern_to_concrete(&rw.lhs.to_string(), &vars);
            let rhs_str = pattern_to_concrete(&rw.rhs.to_string(), &vars);
            let lhs: RecExpr<BoolLang> = lhs_str.parse().unwrap();
            let rhs: RecExpr<BoolLang> = rhs_str.parse().unwrap();
            for assignment in 0..(1usize << vars.len().max(1)) {
                let inputs: Vec<bool> = (0..3).map(|i| assignment >> i & 1 == 1).collect();
                assert_eq!(
                    eval_expr(&lhs, &inputs),
                    eval_expr(&rhs, &inputs),
                    "rule {} is unsound on assignment {assignment:b}",
                    rw.name
                );
            }
        }
    }

    fn pattern_to_concrete(pattern: &str, vars: &[egraph::Var]) -> String {
        let mut out = pattern.to_string();
        for (i, var) in vars.iter().enumerate() {
            out = out.replace(&var.to_string(), &format!("x{i}"));
        }
        out
    }

    #[test]
    fn rule_set_is_send_and_sync() {
        // The Runner's parallel search shares `&[Rewrite<BoolLang>]` across
        // scoped worker threads; every rule must therefore be `Send + Sync`
        // (rules are plain pattern data, so this is a compile-time audit).
        fn assert_send_sync<T: Send + Sync>(_: &T) {}
        let rules = all_rules();
        assert_send_sync(&rules);
        assert!(!rules.is_empty());
    }

    #[test]
    fn table1_has_all_five_rule_classes() {
        let names: Vec<String> = table1_rules().iter().map(|r| r.name.clone()).collect();
        for prefix in ["comm", "assoc", "distribute", "consensus", "demorgan"] {
            assert!(
                names.iter().any(|n| n.starts_with(prefix)),
                "missing rule class {prefix}"
            );
        }
        assert_eq!(table1_rules().len(), 14);
    }

    #[test]
    fn saturation_simplifies_absorption_example() {
        // a * (a + b) => a (Fig. 5's "Covering" example).
        let expr: RecExpr<BoolLang> = "(& x0 (| x0 x1))".parse().unwrap();
        let runner = Runner::default()
            .with_expr(&expr)
            .with_iter_limit(6)
            .run(&all_rules());
        let extractor = Extractor::new(&runner.egraph, AstSize);
        let (cost, best) = extractor.find_best(runner.roots[0]);
        assert_eq!(best.to_string(), "x0");
        assert_eq!(cost, 1);
    }

    #[test]
    fn distributivity_exposes_factored_form() {
        // x*y + x*z has a 4-node factored equivalent x*(y+z).
        let expr: RecExpr<BoolLang> = "(| (& x0 x1) (& x0 x2))".parse().unwrap();
        let runner = Runner::default()
            .with_expr(&expr)
            .with_iter_limit(4)
            .run(&all_rules());
        let extractor = Extractor::new(&runner.egraph, AstSize);
        let (cost, _best) = extractor.find_best(runner.roots[0]);
        assert!(cost <= 5, "expected the factored form, got cost {cost}");
    }

    #[test]
    fn few_iterations_generate_many_classes() {
        // The paper's key observation: a handful of iterations already
        // produces a large number of equivalence classes on a real cone.
        let expr: RecExpr<BoolLang> = "(| (& x0 (| x1 (& x2 x3))) (& (! x1) (| x4 (& x0 x5))))"
            .parse()
            .unwrap();
        let before_classes = {
            let mut eg = egraph::EGraph::<BoolLang>::new();
            eg.add_expr(&expr);
            eg.rebuild();
            eg.num_classes()
        };
        let runner = Runner::default()
            .with_expr(&expr)
            .with_iter_limit(5)
            .with_scheduler(Scheduler::Backoff {
                match_limit: 5_000,
                ban_length: 2,
            })
            .run(&all_rules());
        assert!(runner.egraph.num_classes() > before_classes);
        assert!(runner.egraph.total_nodes() > runner.egraph.num_classes());
    }
}
