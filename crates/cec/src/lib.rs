//! Combinational equivalence checking (CEC) and SAT sweeping over AIGs.
//!
//! This crate plays the role of ABC's `cec` and `fraig`/`dch` machinery in
//! the E-morphic reproduction:
//!
//! * [`check_equivalence`] builds a miter between two AIGs and decides output
//!   equivalence with random simulation (fast refutation) followed by SAT
//!   (proof), returning a counterexample when the circuits differ.
//! * [`SatSweeper`] detects internal functionally equivalent nodes of a
//!   single AIG by simulation-guided candidate grouping plus SAT proofs —
//!   the engine behind structural *choice* computation in `logic-opt`.
//!
//! Every circuit that E-morphic produces is verified against the original
//! with [`check_equivalence`], mirroring the paper's use of `cec` in ABC.

#![warn(missing_docs)]

/// Default per-SAT-call conflict budget shared by [`CecOptions`] and
/// [`SweepOptions`]: verification is bounded by default, so a hard miter
/// returns [`CecResult::Unknown`] instead of spinning when callers forget to
/// thread an explicit budget.
pub const DEFAULT_CONFLICT_BUDGET: u64 = 10_000;

mod miter;
mod sweep;
mod tseitin;

pub use miter::{
    check_equivalence, check_equivalence_swept, CecOptions, CecResult, Counterexample,
};
pub use sweep::{EquivClasses, SatSweeper, SweepOptions, SweepStats};
pub use tseitin::AigCnf;
