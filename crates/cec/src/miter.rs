//! Miter-based combinational equivalence checking.

use crate::sweep::{SatSweeper, SweepOptions};
use crate::tseitin::AigCnf;
use aig::{Aig, Simulator};
use sat::{cnf, Lit as SLit, SatResult, Solver};

/// Options controlling a CEC run.
#[derive(Debug, Clone)]
pub struct CecOptions {
    /// Number of 64-bit random simulation words used for fast refutation.
    pub sim_words: usize,
    /// Seed for random simulation.
    pub sim_seed: u64,
    /// Conflict budget per SAT call (`None` = unlimited). Defaults to the
    /// same bounded [`crate::DEFAULT_CONFLICT_BUDGET`] as [`SweepOptions`].
    pub conflict_budget: Option<u64>,
    /// Check each output pair with its own SAT call instead of one global
    /// miter (usually faster for many-output circuits).
    pub per_output: bool,
}

impl Default for CecOptions {
    fn default() -> Self {
        CecOptions {
            sim_words: 16,
            sim_seed: 0xE5EED,
            conflict_budget: Some(crate::DEFAULT_CONFLICT_BUDGET),
            per_output: true,
        }
    }
}

/// An input assignment on which two circuits differ.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// One value per primary input.
    pub inputs: Vec<bool>,
    /// Index of an output where the two circuits disagree.
    pub output: usize,
}

/// Outcome of an equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CecResult {
    /// The circuits are functionally equivalent on all outputs.
    Equivalent,
    /// The circuits differ; a witness is attached.
    NotEquivalent(Counterexample),
    /// The SAT budget was exhausted before a verdict was reached.
    Unknown,
}

impl CecResult {
    /// Returns `true` if the result proves equivalence.
    pub fn is_equivalent(&self) -> bool {
        matches!(self, CecResult::Equivalent)
    }
}

/// Checks combinational equivalence of two AIGs with the same number of
/// inputs and outputs (matched by position).
///
/// The check first runs bit-parallel random simulation to look for a cheap
/// counterexample, then proves the remaining outputs pairwise with SAT.
///
/// # Panics
/// Panics if the interface sizes differ.
pub fn check_equivalence(golden: &Aig, revised: &Aig, options: &CecOptions) -> CecResult {
    assert_interfaces_match(golden, revised);

    // Phase 1: random simulation for fast refutation.
    if let Some(cex) = simulation_counterexample(golden, revised, options) {
        return CecResult::NotEquivalent(cex);
    }

    // Phase 2: SAT proof.
    let mut solver = Solver::new();
    solver.set_conflict_budget(options.conflict_budget);
    let shared: Vec<SLit> = (0..golden.num_inputs())
        .map(|_| SLit::pos(solver.new_var()))
        .collect();
    let cnf_a = AigCnf::encode(&mut solver, golden, Some(&shared));
    let cnf_b = AigCnf::encode(&mut solver, revised, Some(&shared));

    if options.per_output {
        // A budget-exhausted output must not short-circuit the loop: a later
        // output may still be cheaply refutable, and NotEquivalent always
        // outranks Unknown.
        let mut any_unknown = false;
        for o in 0..golden.num_outputs() {
            let res = solve_output_pair(
                &mut solver,
                &shared,
                cnf_a.output_lits[o],
                cnf_b.output_lits[o],
            );
            match res {
                OutputVerdict::Equal => {}
                OutputVerdict::Differs(inputs) => {
                    return CecResult::NotEquivalent(Counterexample { inputs, output: o })
                }
                OutputVerdict::Unknown => any_unknown = true,
            }
        }
        if any_unknown {
            CecResult::Unknown
        } else {
            CecResult::Equivalent
        }
    } else {
        // Single global miter: OR of all pairwise XORs must be unsatisfiable.
        let mut xor_outs = Vec::with_capacity(golden.num_outputs());
        for o in 0..golden.num_outputs() {
            let x = SLit::pos(solver.new_var());
            cnf::encode_xor(&mut solver, x, cnf_a.output_lits[o], cnf_b.output_lits[o]);
            xor_outs.push(x);
        }
        solver.add_clause(&xor_outs);
        match solver.solve() {
            SatResult::Unsat => CecResult::Equivalent,
            SatResult::Unknown => CecResult::Unknown,
            SatResult::Sat => {
                let inputs = shared
                    .iter()
                    .map(|&l| solver.value(l).unwrap_or(false))
                    .collect::<Vec<bool>>();
                let output = xor_outs
                    .iter()
                    .position(|&x| solver.value(x) == Some(true))
                    .unwrap_or(0);
                CecResult::NotEquivalent(Counterexample { inputs, output })
            }
        }
    }
}

/// Fraig-style CEC: the two circuits are stacked over shared inputs and
/// SAT-swept, so functionally equivalent internal cones merge bottom-up —
/// each merge a small, local SAT proof — before the remaining output pairs
/// are decided on the reduced network. Structurally related circuits (a
/// mapped netlist against its source, a resynthesized multiplier against the
/// original) usually collapse output-for-output during the sweep, closing
/// miters the monolithic [`check_equivalence`] cannot within the same
/// conflict budget.
///
/// # Panics
/// Panics if the interface sizes differ.
pub fn check_equivalence_swept(
    golden: &Aig,
    revised: &Aig,
    options: &CecOptions,
    sweep: &SweepOptions,
) -> CecResult {
    assert_interfaces_match(golden, revised);
    if let Some(cex) = simulation_counterexample(golden, revised, options) {
        return CecResult::NotEquivalent(cex);
    }

    let stacked = aig::stack_over_shared_inputs(golden, revised, "_b");
    let (reduced, _stats) = SatSweeper::new(sweep.clone()).sweep(&stacked);

    let n = golden.num_outputs();
    let mut solver = Solver::new();
    solver.set_conflict_budget(options.conflict_budget);
    let cnf = AigCnf::encode(&mut solver, &reduced, None);
    let shared = cnf.input_lits.clone();
    let mut any_unknown = false;
    for o in 0..n {
        let (la, lb) = (reduced.outputs()[o], reduced.outputs()[o + n]);
        if la == lb {
            continue; // the sweep already merged this output pair
        }
        match solve_output_pair(&mut solver, &shared, cnf.lit(la), cnf.lit(lb)) {
            OutputVerdict::Equal => {}
            OutputVerdict::Differs(inputs) => {
                return CecResult::NotEquivalent(Counterexample { inputs, output: o })
            }
            OutputVerdict::Unknown => any_unknown = true,
        }
    }
    if any_unknown {
        CecResult::Unknown
    } else {
        CecResult::Equivalent
    }
}

fn assert_interfaces_match(golden: &Aig, revised: &Aig) {
    assert_eq!(
        golden.num_inputs(),
        revised.num_inputs(),
        "CEC requires matching input counts ({} vs {})",
        golden.num_inputs(),
        revised.num_inputs()
    );
    assert_eq!(
        golden.num_outputs(),
        revised.num_outputs(),
        "CEC requires matching output counts ({} vs {})",
        golden.num_outputs(),
        revised.num_outputs()
    );
}

/// Bit-parallel random simulation over both circuits; returns a witness for
/// the first differing output pattern, if any.
fn simulation_counterexample(
    golden: &Aig,
    revised: &Aig,
    options: &CecOptions,
) -> Option<Counterexample> {
    if golden.num_inputs() == 0 || options.sim_words == 0 {
        return None;
    }
    let sim_a = Simulator::random(golden, options.sim_words, options.sim_seed);
    let sim_b = Simulator::random(revised, options.sim_words, options.sim_seed);
    let outs_a = sim_a.output_signatures(golden);
    let outs_b = sim_b.output_signatures(revised);
    for (o, (sa, sb)) in outs_a.iter().zip(outs_b.iter()).enumerate() {
        for (w, (wa, wb)) in sa.iter().zip(sb.iter()).enumerate() {
            let diff = wa ^ wb;
            if diff != 0 {
                let bit = diff.trailing_zeros() as usize;
                let pattern_index = w * 64 + bit;
                let inputs = recover_pattern(golden, options, pattern_index);
                return Some(Counterexample { inputs, output: o });
            }
        }
    }
    None
}

enum OutputVerdict {
    Equal,
    Differs(Vec<bool>),
    Unknown,
}

fn solve_output_pair(
    solver: &mut Solver,
    shared: &[SLit],
    out_a: SLit,
    out_b: SLit,
) -> OutputVerdict {
    // a != b is satisfiable in exactly two phases; check both with assumptions
    // so the solver stays reusable for the next output.
    for (phase_a, phase_b) in [(true, false), (false, true)] {
        let assumptions = [
            if phase_a { out_a } else { !out_a },
            if phase_b { out_b } else { !out_b },
        ];
        match solver.solve_with_assumptions(&assumptions) {
            SatResult::Sat => {
                let inputs = shared
                    .iter()
                    .map(|&l| solver.value(l).unwrap_or(false))
                    .collect();
                return OutputVerdict::Differs(inputs);
            }
            SatResult::Unknown => return OutputVerdict::Unknown,
            SatResult::Unsat => {}
        }
    }
    OutputVerdict::Equal
}

fn recover_pattern(aig: &Aig, options: &CecOptions, pattern_index: usize) -> Vec<bool> {
    // Re-generate the same random stimulus to recover the differing pattern.
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    let mut rng = StdRng::seed_from_u64(options.sim_seed);
    let words = options.sim_words;
    let mut inputs = Vec::with_capacity(aig.num_inputs());
    for _ in 0..aig.num_inputs() {
        let sig: Vec<u64> = (0..words).map(|_| rng.random::<u64>()).collect();
        inputs.push(sig[pattern_index / 64] >> (pattern_index % 64) & 1 == 1);
    }
    inputs
}

#[cfg(test)]
mod tests {
    use super::*;
    use aig::Lit;

    fn adder(width: usize, use_xor_form: bool) -> Aig {
        let mut aig = Aig::new("adder");
        let a: Vec<Lit> = (0..width).map(|i| aig.add_input(format!("a{i}"))).collect();
        let b: Vec<Lit> = (0..width).map(|i| aig.add_input(format!("b{i}"))).collect();
        let mut carry = Lit::FALSE;
        for i in 0..width {
            let (sum, cout) = if use_xor_form {
                let axb = aig.xor(a[i], b[i]);
                let sum = aig.xor(axb, carry);
                let cout = aig.maj3(a[i], b[i], carry);
                (sum, cout)
            } else {
                // mux-based formulation: sum = carry ? !(a^b) : (a^b)
                let axb = aig.xor(a[i], b[i]);
                let sum = aig.mux(carry, axb.not(), axb);
                let ab = aig.and(a[i], b[i]);
                let c_and_axb = aig.and(carry, axb);
                let cout = aig.or(ab, c_and_axb);
                (sum, cout)
            };
            aig.add_output(sum, format!("s{i}"));
            carry = cout;
        }
        aig.add_output(carry, "cout");
        aig
    }

    #[test]
    fn equivalent_adder_formulations() {
        let a = adder(4, true);
        let b = adder(4, false);
        let res = check_equivalence(&a, &b, &CecOptions::default());
        assert!(res.is_equivalent(), "got {res:?}");
    }

    #[test]
    fn detects_single_gate_bug() {
        let golden = adder(3, true);
        // Build a buggy version: swap an AND for an OR in the carry chain.
        let mut buggy = Aig::new("buggy");
        let a: Vec<Lit> = (0..3).map(|i| buggy.add_input(format!("a{i}"))).collect();
        let b: Vec<Lit> = (0..3).map(|i| buggy.add_input(format!("b{i}"))).collect();
        let mut carry = Lit::FALSE;
        for i in 0..3 {
            let axb = buggy.xor(a[i], b[i]);
            let sum = buggy.xor(axb, carry);
            let cout = if i == 1 {
                // Bug: OR of the three instead of majority.
                let t = buggy.or(a[i], b[i]);
                buggy.or(t, carry)
            } else {
                buggy.maj3(a[i], b[i], carry)
            };
            buggy.add_output(sum, format!("s{i}"));
            carry = cout;
        }
        buggy.add_output(carry, "cout");

        let res = check_equivalence(&golden, &buggy, &CecOptions::default());
        match res {
            CecResult::NotEquivalent(cex) => {
                // The counterexample must really distinguish the two circuits.
                let ga = golden.evaluate(&cex.inputs);
                let gb = buggy.evaluate(&cex.inputs);
                assert_ne!(ga, gb);
            }
            other => panic!("expected a counterexample, got {other:?}"),
        }
    }

    #[test]
    fn detects_output_inversion_without_simulation() {
        // Disable simulation so the SAT path produces the counterexample.
        let mut a = Aig::new("a");
        let x = a.add_input("x");
        let y = a.add_input("y");
        let f = a.and(x, y);
        a.add_output(f, "f");
        let mut b = Aig::new("b");
        let x2 = b.add_input("x");
        let y2 = b.add_input("y");
        let g = b.and(x2, y2);
        b.add_output(g.not(), "f");
        let opts = CecOptions {
            sim_words: 0,
            per_output: true,
            ..CecOptions::default()
        };
        let res = check_equivalence(&a, &b, &opts);
        match res {
            CecResult::NotEquivalent(cex) => {
                assert_ne!(a.evaluate(&cex.inputs), b.evaluate(&cex.inputs));
            }
            other => panic!("expected NotEquivalent, got {other:?}"),
        }
    }

    #[test]
    fn global_miter_mode_agrees() {
        let a = adder(3, true);
        let b = adder(3, false);
        let opts = CecOptions {
            per_output: false,
            ..CecOptions::default()
        };
        assert!(check_equivalence(&a, &b, &opts).is_equivalent());
    }

    #[test]
    fn constant_only_circuits() {
        let mut a = Aig::new("a");
        let _ = a.add_input("x");
        a.add_output(Lit::TRUE, "one");
        let mut b = Aig::new("b");
        let _ = b.add_input("x");
        b.add_output(Lit::FALSE, "one");
        let res = check_equivalence(&a, &b, &CecOptions::default());
        assert!(matches!(res, CecResult::NotEquivalent(_)));
        let res_same = check_equivalence(&a, &a, &CecOptions::default());
        assert!(res_same.is_equivalent());
    }
}
