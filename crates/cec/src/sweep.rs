//! SAT sweeping (fraig-style): detect and merge functionally equivalent
//! internal nodes of an AIG.
//!
//! Sweeping is the mechanism behind the `dch`-style structural choice
//! computation used by `logic-opt`: candidate equivalences are proposed by
//! bit-parallel random simulation and then proved (or refuted) with SAT on a
//! single incremental solver shared across the whole sweep.
//!
//! When a proof attempt *fails*, the SAT model is a distinguishing input
//! pattern. With [`SweepOptions::cex_refinement`] enabled (the default) that
//! pattern is resimulated through the network and used to split the current
//! and all still-pending candidate classes (ABC fraig-style counterexample
//! refinement), so one refuted pair prunes every other candidate pair the
//! pattern distinguishes — without further SAT calls.

use crate::tseitin::AigCnf;
use aig::{Aig, Lit as ALit, Simulator};
use sat::{Lit as SLit, SatResult, Solver};
use std::collections::VecDeque;

/// Options controlling a sweep.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Number of 64-bit random simulation words used to form candidates.
    pub sim_words: usize,
    /// Seed for the candidate simulation.
    pub sim_seed: u64,
    /// Conflict budget per SAT proof (`None` = unlimited).
    pub conflict_budget: Option<u64>,
    /// Skip candidate classes larger than this (guards worst-case blowup).
    pub max_class_size: usize,
    /// Resimulate SAT counterexamples to split remaining candidate classes
    /// before spending further SAT calls on them.
    pub cex_refinement: bool,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            sim_words: 8,
            sim_seed: 0x5EEDu64,
            conflict_budget: Some(crate::DEFAULT_CONFLICT_BUDGET),
            max_class_size: 64,
            cex_refinement: true,
        }
    }
}

/// Statistics of a sweep run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Number of candidate pairs submitted to SAT.
    pub sat_calls: usize,
    /// Pairs proved equivalent.
    pub proved: usize,
    /// Pairs refuted.
    pub disproved: usize,
    /// Pairs abandoned due to the conflict budget.
    pub unknown: usize,
    /// AND nodes removed by merging (in [`SatSweeper::sweep`]).
    pub merged_nodes: usize,
    /// Counterexample patterns resimulated for class refinement.
    pub resimulations: usize,
    /// Candidate members moved out of their class by a counterexample
    /// (each avoided at least one SAT call).
    pub cex_splits: usize,
}

/// Groups of functionally equivalent literals.
///
/// Each class lists literals that are pairwise equivalent; the first entry is
/// the representative (topologically earliest, uncomplemented). Other entries
/// are expressed relative to it: a complemented literal means the node equals
/// the *negation* of the representative.
#[derive(Debug, Clone, Default)]
pub struct EquivClasses {
    /// The proved equivalence classes (each with at least two members).
    pub classes: Vec<Vec<ALit>>,
}

impl EquivClasses {
    /// Total number of non-representative members (i.e. mergeable nodes).
    pub fn num_redundant(&self) -> usize {
        self.classes.iter().map(|c| c.len().saturating_sub(1)).sum()
    }
}

/// SAT sweeping engine.
#[derive(Debug, Clone, Default)]
pub struct SatSweeper {
    /// Options used by this sweeper.
    pub options: SweepOptions,
}

impl SatSweeper {
    /// Creates a sweeper with the given options.
    pub fn new(options: SweepOptions) -> Self {
        SatSweeper { options }
    }

    /// Finds proved equivalence classes among the nodes of `aig`.
    pub fn find_equivalences(&self, aig: &Aig) -> (EquivClasses, SweepStats) {
        let mut stats = SweepStats::default();
        if aig.num_inputs() == 0 {
            return (EquivClasses::default(), stats);
        }
        let sim = Simulator::random(aig, self.options.sim_words, self.options.sim_seed);

        // Group nodes by canonical signature (complement so that bit 0 is 0).
        use std::collections::HashMap;
        let mut groups: HashMap<Vec<u64>, Vec<ALit>> = HashMap::new();
        for id in aig.node_ids() {
            let node = aig.node(id);
            if !(node.is_and() || node.is_const()) {
                continue;
            }
            let sig = sim.node_signature(id);
            let complemented = sig.first().is_some_and(|w| w & 1 == 1);
            let canon: Vec<u64> = if complemented {
                sig.iter().map(|w| !w).collect()
            } else {
                sig.clone()
            };
            groups
                .entry(canon)
                .or_default()
                .push(ALit::new(id, complemented));
        }

        let mut candidate_classes: Vec<Vec<ALit>> = groups
            .into_values()
            .filter(|g| g.len() >= 2 && g.len() <= self.options.max_class_size)
            .collect();
        // Deterministic order: by the representative node id.
        for class in &mut candidate_classes {
            class.sort_by_key(|l| l.node());
        }
        candidate_classes.sort_by_key(|c| c[0].node());

        if candidate_classes.is_empty() {
            return (EquivClasses::default(), stats);
        }

        // One solver instance for all proofs.
        let mut solver = Solver::new();
        solver.set_conflict_budget(self.options.conflict_budget);
        let cnf = AigCnf::encode(&mut solver, aig, None);

        let mut pending: VecDeque<Vec<ALit>> = candidate_classes.into();
        let mut proved_classes = Vec::new();
        while let Some(mut class) = pending.pop_front() {
            let rep = class[0];
            // The representative is stored uncomplemented; members carry the
            // relative phase.
            let rep_node = rep.node();
            let mut proved: Vec<ALit> = vec![ALit::new(rep_node, false)];
            let mut idx = 1;
            while idx < class.len() {
                let member = class[idx];
                let phase = member.is_complemented() != rep.is_complemented();
                let a = cnf.node(rep_node);
                let b = cnf.node(member.node());
                let b = if phase { !b } else { b };
                match prove_equal(&mut solver, a, b, &mut stats) {
                    Verdict::Equal => {
                        proved.push(ALit::new(member.node(), phase));
                        idx += 1;
                    }
                    Verdict::Unknown => idx += 1,
                    Verdict::Different => {
                        if !self.options.cex_refinement {
                            idx += 1;
                            continue;
                        }
                        // The SAT model is a distinguishing input pattern:
                        // resimulate it and split every candidate class it
                        // distinguishes. The refuted member is guaranteed to
                        // disagree with the representative, so the current
                        // class always shrinks.
                        let pattern: Vec<bool> = cnf
                            .input_lits
                            .iter()
                            .map(|&l| solver.value(l).unwrap_or(false))
                            .collect();
                        let values = aig.evaluate_nodes(&pattern);
                        stats.resimulations += 1;
                        let rep_val = values[rep_node.index()] ^ rep.is_complemented();
                        let tail: Vec<ALit> = class.split_off(idx);
                        let (agree, disagree): (Vec<ALit>, Vec<ALit>) =
                            tail.into_iter().partition(|m| {
                                values[m.node().index()] ^ m.is_complemented() == rep_val
                            });
                        stats.cex_splits += disagree.len();
                        class.extend(agree);
                        // The split-off group is still internally candidate-
                        // equivalent; node order (and thus the topologically
                        // earliest representative) is preserved.
                        if disagree.len() >= 2 {
                            pending.push_back(disagree);
                        }
                        let mut new_classes: Vec<Vec<ALit>> = Vec::new();
                        for queued in pending.iter_mut() {
                            let old: Vec<ALit> = std::mem::take(queued);
                            let q_rep_val =
                                values[old[0].node().index()] ^ old[0].is_complemented();
                            let (same, split): (Vec<ALit>, Vec<ALit>) =
                                old.into_iter().partition(|m| {
                                    values[m.node().index()] ^ m.is_complemented() == q_rep_val
                                });
                            stats.cex_splits += split.len();
                            *queued = same;
                            if split.len() >= 2 {
                                new_classes.push(split);
                            }
                        }
                        pending.retain(|c| c.len() >= 2);
                        pending.extend(new_classes);
                    }
                }
            }
            if proved.len() >= 2 {
                proved_classes.push(proved);
            }
        }
        // Splitting appends refined classes out of order; restore the
        // deterministic by-representative order.
        proved_classes.sort_by_key(|c| c[0].node());
        (
            EquivClasses {
                classes: proved_classes,
            },
            stats,
        )
    }

    /// Merges proved-equivalent nodes, returning the reduced network.
    pub fn sweep(&self, aig: &Aig) -> (Aig, SweepStats) {
        let (classes, mut stats) = self.find_equivalences(aig);
        // replacement[node] = literal (in the OLD network) it should be
        // replaced with.
        let mut replacement: Vec<Option<ALit>> = vec![None; aig.num_nodes()];
        for class in &classes.classes {
            let rep = class[0];
            for &member in &class[1..] {
                replacement[member.node().index()] =
                    Some(ALit::new(rep.node(), member.is_complemented()));
            }
        }

        let mut fresh = Aig::new(aig.name().to_string());
        let mut map: Vec<Option<ALit>> = vec![None; aig.num_nodes()];
        map[0] = Some(ALit::FALSE);
        for (idx, &input) in aig.inputs().iter().enumerate() {
            map[input.index()] = Some(fresh.add_input(aig.input_name(idx)));
        }
        for id in aig.and_ids() {
            // If this node is replaced, point it at the (already built)
            // representative instead of building a gate.
            if let Some(rep_lit) = replacement[id.index()] {
                let base = map[rep_lit.node().index()].unwrap_or_else(|| {
                    unreachable!("representative precedes member in topological order")
                });
                map[id.index()] = Some(base.xor(rep_lit.is_complemented()));
                stats.merged_nodes += 1;
                continue;
            }
            let (f0, f1) = aig.fanins(id);
            let a = map[f0.node().index()]
                .unwrap_or_else(|| unreachable!("fanin built"))
                .xor(f0.is_complemented());
            let b = map[f1.node().index()]
                .unwrap_or_else(|| unreachable!("fanin built"))
                .xor(f1.is_complemented());
            map[id.index()] = Some(fresh.and(a, b));
        }
        for (idx, &po) in aig.outputs().iter().enumerate() {
            let lit = map[po.node().index()]
                .unwrap_or_else(|| unreachable!("output driver built"))
                .xor(po.is_complemented());
            fresh.add_output(lit, aig.output_name(idx));
        }
        (fresh.cleanup(), stats)
    }
}

enum Verdict {
    Equal,
    Different,
    Unknown,
}

fn prove_equal(solver: &mut Solver, a: SLit, b: SLit, stats: &mut SweepStats) -> Verdict {
    stats.sat_calls += 1;
    let mut unknown = false;
    for (pa, pb) in [(true, false), (false, true)] {
        let assumptions = [if pa { a } else { !a }, if pb { b } else { !b }];
        match solver.solve_with_assumptions(&assumptions) {
            SatResult::Sat => {
                stats.disproved += 1;
                return Verdict::Different;
            }
            SatResult::Unknown => unknown = true,
            SatResult::Unsat => {}
        }
    }
    if unknown {
        stats.unknown += 1;
        Verdict::Unknown
    } else {
        stats.proved += 1;
        Verdict::Equal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_equivalence, CecOptions};

    /// A circuit with deliberately duplicated logic in different shapes:
    /// `(a & b) | c` written both in sum-of-products and product-of-sums
    /// form, so structural hashing cannot merge the two cones.
    fn redundant_circuit() -> Aig {
        let mut aig = Aig::new("redundant");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let ab = aig.and(a, b);
        let f1 = aig.or(ab, c);
        let a_or_c = aig.or(a, c);
        let b_or_c = aig.or(b, c);
        let f2 = aig.and(a_or_c, b_or_c); // distributed form of (a & b) | c
        aig.add_output(f1, "f1");
        aig.add_output(f2, "f2");
        aig
    }

    #[test]
    fn finds_equivalent_nodes() {
        let aig = redundant_circuit();
        let sweeper = SatSweeper::default();
        let (classes, stats) = sweeper.find_equivalences(&aig);
        assert!(classes.num_redundant() >= 1, "stats: {stats:?}");
        assert!(stats.proved >= 1);
    }

    #[test]
    fn sweep_reduces_and_preserves_function() {
        let aig = redundant_circuit();
        let sweeper = SatSweeper::default();
        let (reduced, stats) = sweeper.sweep(&aig);
        assert!(stats.merged_nodes >= 1);
        assert!(reduced.num_ands() < aig.num_ands());
        let res = check_equivalence(&aig, &reduced, &CecOptions::default());
        assert!(res.is_equivalent(), "{res:?}");
    }

    #[test]
    fn sweep_handles_antiphase_equivalence() {
        let mut aig = Aig::new("phase");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        // x = !(a & b), y = a & b: x == !y.
        let y = aig.and(a, b);
        let na = a.not();
        let nb = b.not();
        let t = aig.or(na, nb); // == !(a&b)
        aig.add_output(y, "y");
        aig.add_output(t, "x");
        let sweeper = SatSweeper::default();
        let (reduced, _) = sweeper.sweep(&aig);
        let res = check_equivalence(&aig, &reduced, &CecOptions::default());
        assert!(res.is_equivalent());
        assert!(reduced.num_ands() <= aig.num_ands());
    }

    #[test]
    fn sweep_of_irredundant_circuit_is_identity_sized() {
        let mut aig = Aig::new("irred");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let f = aig.mux(a, b, c);
        aig.add_output(f, "f");
        let sweeper = SatSweeper::default();
        let (reduced, _) = sweeper.sweep(&aig);
        assert_eq!(reduced.num_ands(), aig.cleanup().num_ands());
        assert!(check_equivalence(&aig, &reduced, &CecOptions::default()).is_equivalent());
    }

    #[test]
    fn detects_constant_nodes() {
        let mut aig = Aig::new("const");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        // (a & b) & (!a) is constant false but is not simplified structurally
        // because the sharing pattern hides it:
        let ab = aig.and(a, b);
        let f = aig.and(ab, a.not());
        let g = aig.or(f, b); // == b
        aig.add_output(g, "g");
        let sweeper = SatSweeper::default();
        let (classes, _) = sweeper.find_equivalences(&aig);
        // The class containing the constant node should include f's node.
        let has_const_class = classes
            .classes
            .iter()
            .any(|c| c.iter().any(|l| l.node() == aig::NodeId::CONST));
        assert!(has_const_class);
        let (reduced, _) = sweeper.sweep(&aig);
        assert!(check_equivalence(&aig, &reduced, &CecOptions::default()).is_equivalent());
    }
}
