//! Tseitin encoding of AIGs into CNF.

use aig::{Aig, AigNode, Lit as ALit, NodeId};
use sat::{cnf, ClauseSink, Lit as SLit};

/// The CNF image of an AIG inside a [`ClauseSink`] (a solver, the reference
/// oracle or a plain CNF container): one SAT variable per AIG node plus a
/// constant-false variable.
#[derive(Debug, Clone)]
pub struct AigCnf {
    /// SAT literal corresponding to each AIG node (uncomplemented).
    node_lits: Vec<SLit>,
    /// SAT literals of the primary inputs, in input order.
    pub input_lits: Vec<SLit>,
    /// SAT literals of the primary outputs, in output order.
    pub output_lits: Vec<SLit>,
}

impl AigCnf {
    /// Encodes `aig` into `solver`, sharing input variables if `shared_inputs`
    /// is given (used to build miters over common primary inputs).
    ///
    /// # Panics
    /// Panics if `shared_inputs` is provided with the wrong length.
    pub fn encode<S: ClauseSink>(
        solver: &mut S,
        aig: &Aig,
        shared_inputs: Option<&[SLit]>,
    ) -> Self {
        if let Some(shared) = shared_inputs {
            assert_eq!(
                shared.len(),
                aig.num_inputs(),
                "shared input vector length must match the AIG input count"
            );
        }
        let mut node_lits: Vec<SLit> = Vec::with_capacity(aig.num_nodes());
        // Node 0: constant false.
        let const_var = solver.new_var();
        let const_lit = SLit::pos(const_var);
        solver.add_clause(&[!const_lit]);
        node_lits.push(const_lit);

        let mut input_lits = Vec::with_capacity(aig.num_inputs());
        for id in aig.node_ids().skip(1) {
            let lit = match aig.node(id) {
                AigNode::Const => unreachable!("constant is node 0"),
                AigNode::Input { index } => {
                    let lit = match shared_inputs {
                        Some(shared) => shared[*index as usize],
                        None => SLit::pos(solver.new_var()),
                    };
                    input_lits.push(lit);
                    lit
                }
                AigNode::And { fanin0, fanin1 } => {
                    let out = SLit::pos(solver.new_var());
                    let a = Self::lift(&node_lits, *fanin0);
                    let b = Self::lift(&node_lits, *fanin1);
                    cnf::encode_and(solver, out, a, b);
                    out
                }
            };
            node_lits.push(lit);
        }
        let output_lits = aig
            .outputs()
            .iter()
            .map(|&po| Self::lift(&node_lits, po))
            .collect();
        AigCnf {
            node_lits,
            input_lits,
            output_lits,
        }
    }

    fn lift(node_lits: &[SLit], lit: ALit) -> SLit {
        let base = node_lits[lit.node().index()];
        if lit.is_complemented() {
            !base
        } else {
            base
        }
    }

    /// Returns the SAT literal of an AIG literal.
    pub fn lit(&self, lit: ALit) -> SLit {
        Self::lift(&self.node_lits, lit)
    }

    /// Returns the SAT literal of an AIG node (uncomplemented).
    pub fn node(&self, node: NodeId) -> SLit {
        self.node_lits[node.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sat::{SatResult, Solver};

    fn full_adder() -> Aig {
        let mut aig = Aig::new("fa");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let cin = aig.add_input("cin");
        let axb = aig.xor(a, b);
        let sum = aig.xor(axb, cin);
        let carry = aig.maj3(a, b, cin);
        aig.add_output(sum, "sum");
        aig.add_output(carry, "carry");
        aig
    }

    #[test]
    fn encoding_matches_evaluation() {
        let aig = full_adder();
        for pattern in 0..8u32 {
            let bits = [(pattern & 1) != 0, (pattern & 2) != 0, (pattern & 4) != 0];
            let expected = aig.evaluate(&bits);
            let mut solver = Solver::new();
            let cnf = AigCnf::encode(&mut solver, &aig, None);
            let assumptions: Vec<SLit> = cnf
                .input_lits
                .iter()
                .zip(bits.iter())
                .map(|(&l, &b)| if b { l } else { !l })
                .collect();
            assert_eq!(solver.solve_with_assumptions(&assumptions), SatResult::Sat);
            for (o, &out_lit) in cnf.output_lits.iter().enumerate() {
                assert_eq!(
                    solver.value(out_lit),
                    Some(expected[o]),
                    "pattern {pattern} output {o}"
                );
            }
        }
    }

    #[test]
    fn shared_inputs_are_reused() {
        let aig = full_adder();
        let mut solver = Solver::new();
        let shared: Vec<SLit> = (0..3).map(|_| SLit::pos(solver.new_var())).collect();
        let c1 = AigCnf::encode(&mut solver, &aig, Some(&shared));
        let c2 = AigCnf::encode(&mut solver, &aig, Some(&shared));
        assert_eq!(c1.input_lits, c2.input_lits);
        // Same circuit over the same inputs: outputs must agree; forcing them
        // to differ is UNSAT.
        let diff_assumption = vec![c1.output_lits[0], !c2.output_lits[0]];
        assert_eq!(
            solver.solve_with_assumptions(&diff_assumption),
            SatResult::Unsat
        );
    }

    #[test]
    fn constant_output_encoding() {
        let mut aig = Aig::new("consts");
        let _x = aig.add_input("x");
        aig.add_output(ALit::TRUE, "one");
        aig.add_output(ALit::FALSE, "zero");
        let mut solver = Solver::new();
        let cnf = AigCnf::encode(&mut solver, &aig, None);
        assert_eq!(solver.solve(), SatResult::Sat);
        assert_eq!(solver.value(cnf.output_lits[0]), Some(true));
        assert_eq!(solver.value(cnf.output_lits[1]), Some(false));
    }
}
