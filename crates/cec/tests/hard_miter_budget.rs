//! The bounded-by-default guarantee: a genuinely hard miter under
//! `CecOptions::default()` must come back [`CecResult::Unknown`] within the
//! default conflict budget instead of spinning — the regression for the old
//! `conflict_budget: None` default that could hang the monolithic CEC path.

// Helper fns here run outside #[test] context, so the clippy.toml
// test relaxation does not reach them.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use aig::{Aig, Lit as ALit};
use cec::{check_equivalence, CecOptions, CecResult};

/// Rebuilds `aig` with its primary inputs permuted: input `i` of the copy
/// reads original input `perm[i]`.
fn permute_inputs(aig: &Aig, perm: &[usize]) -> Aig {
    assert_eq!(perm.len(), aig.num_inputs());
    let mut fresh = Aig::new(format!("{}_perm", aig.name()));
    let fresh_inputs: Vec<ALit> = (0..aig.num_inputs())
        .map(|i| fresh.add_input(aig.input_name(i)))
        .collect();
    let mut map: Vec<Option<ALit>> = vec![None; aig.num_nodes()];
    map[0] = Some(ALit::FALSE);
    for (idx, &input) in aig.inputs().iter().enumerate() {
        map[input.index()] = Some(fresh_inputs[perm[idx]]);
    }
    for id in aig.and_ids() {
        let (f0, f1) = aig.fanins(id);
        let a = map[f0.node().index()]
            .expect("fanin built")
            .xor(f0.is_complemented());
        let b = map[f1.node().index()]
            .expect("fanin built")
            .xor(f1.is_complemented());
        map[id.index()] = Some(fresh.and(a, b));
    }
    for (idx, &po) in aig.outputs().iter().enumerate() {
        let lit = map[po.node().index()]
            .expect("output driver built")
            .xor(po.is_complemented());
        fresh.add_output(lit, aig.output_name(idx));
    }
    fresh
}

/// `a*b` against `b*a`: equivalent by commutativity, but structurally
/// unrelated cones — random simulation finds no counterexample and the SAT
/// proof is exponential-ish, the classic hard miter.
fn commuted_multiplier(width: usize) -> (Aig, Aig) {
    let golden = benchgen::multiplier(width).aig;
    let w = golden.num_inputs() / 2;
    let perm: Vec<usize> = (0..2 * w).map(|i| (i + w) % (2 * w)).collect();
    let revised = permute_inputs(&golden, &perm);
    (golden, revised)
}

#[test]
fn default_options_are_bounded() {
    assert!(
        CecOptions::default().conflict_budget.is_some(),
        "CEC must be budget-bounded by default"
    );
    assert_eq!(
        CecOptions::default().conflict_budget,
        cec::SweepOptions::default().conflict_budget,
        "CEC and sweep defaults must agree"
    );
}

/// Keeps only output `index`, pruning the rest of the cone.
fn single_output(aig: &Aig, index: usize) -> Aig {
    let mut trimmed = aig.clone();
    let kept = aig.outputs()[index];
    let name = aig.output_name(index).to_string();
    trimmed.clear_outputs();
    trimmed.add_output(kept, name);
    trimmed.cleanup()
}

#[test]
fn hard_miter_returns_unknown_under_default_budget() {
    // The middle product bit of `a*b` vs `b*a` is the classic hard miter;
    // restricting to that single output keeps the test fast while still
    // exhausting the default budget.
    let (golden, revised) = commuted_multiplier(8);
    let mid = golden.num_outputs() / 2;
    let res = check_equivalence(
        &single_output(&golden, mid),
        &single_output(&revised, mid),
        &CecOptions::default(),
    );
    assert_eq!(
        res,
        CecResult::Unknown,
        "a commuted-multiplier miter should exhaust the default budget"
    );
}
