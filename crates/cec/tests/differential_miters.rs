//! Differential testing of the two SAT engines on *miter* workloads: the
//! exact CNFs the equivalence checker produces, rather than random clause
//! soup. A benchgen circuit is Tseitin-encoded twice over shared inputs into
//! a [`CnfFormula`] (via the [`ClauseSink`] abstraction), the formula is
//! loaded into both the modern [`Solver`] and the [`ReferenceSolver`]
//! oracle, and every output-pair query must agree: same verdict, models
//! validated by clause evaluation, and matching-output pairs proved `Unsat`.
//!
//! Run with `PROPTEST_CASES=2000` (or higher) for the PR gate.

// Helper fns here run outside #[test] context, so the clippy.toml
// test relaxation does not reach them.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use cec::AigCnf;
use proptest::prelude::*;
use sat::dimacs::CnfFormula;
use sat::{ClauseSink, Lit as SLit, SatResult};

struct MiterInstance {
    cnf: CnfFormula,
    outputs_a: Vec<SLit>,
    outputs_b: Vec<SLit>,
}

/// Encodes `aig` twice over shared inputs — the standard miter construction.
fn encode_miter(aig: &aig::Aig) -> MiterInstance {
    let mut cnf = CnfFormula::default();
    let shared: Vec<SLit> = (0..aig.num_inputs())
        .map(|_| SLit::pos(cnf.new_var()))
        .collect();
    let image_a = AigCnf::encode(&mut cnf, aig, Some(&shared));
    let image_b = AigCnf::encode(&mut cnf, aig, Some(&shared));
    MiterInstance {
        cnf,
        outputs_a: image_a.output_lits,
        outputs_b: image_b.output_lits,
    }
}

fn clauses_satisfied(cnf: &CnfFormula, value: impl Fn(SLit) -> Option<bool>) -> bool {
    cnf.clauses
        .iter()
        .all(|cl| cl.iter().any(|&l| value(l).unwrap_or(true)))
}

/// Runs the two-phase output-pair query on both engines and cross-checks.
fn check_pair(instance: &MiterInstance, oa: usize, ob: usize) -> Result<(), TestCaseError> {
    let mut solver = instance.cnf.to_solver();
    let mut oracle = instance.cnf.to_reference_solver();
    let (a, b) = (instance.outputs_a[oa], instance.outputs_b[ob]);
    let mut any_sat = false;
    for (pa, pb) in [(true, false), (false, true)] {
        let assumptions = [if pa { a } else { !a }, if pb { b } else { !b }];
        let new_verdict = solver.solve_with_assumptions(&assumptions);
        let old_verdict = oracle.solve_with_assumptions(&assumptions);
        prop_assert_eq!(new_verdict, old_verdict, "miter verdict disagreement");
        match new_verdict {
            SatResult::Sat => {
                any_sat = true;
                prop_assert!(
                    clauses_satisfied(&instance.cnf, |l| solver.value(l)),
                    "new engine model violates a miter clause"
                );
                prop_assert!(
                    clauses_satisfied(&instance.cnf, |l| oracle.value(l)),
                    "reference model violates a miter clause"
                );
            }
            SatResult::Unsat => {
                // The failed-assumption core must itself be unsatisfiable.
                let core: Vec<SLit> = solver.failed_assumptions().to_vec();
                for l in &core {
                    prop_assert!(assumptions.contains(l));
                }
                prop_assert_eq!(
                    solver.solve_with_assumptions(&core),
                    SatResult::Unsat,
                    "assumption core is not unsatisfiable"
                );
            }
            SatResult::Unknown => prop_assert!(false, "unlimited budget returned Unknown"),
        }
    }
    if oa == ob {
        prop_assert!(!any_sat, "same output pair must be equivalent");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
    #[test]
    fn random_aig_miters_agree(seed in proptest::prelude::any::<u64>()) {
        let aig = benchgen::random_aig(5, 30, 3, seed);
        let instance = encode_miter(&aig);
        for oa in 0..instance.outputs_a.len() {
            for ob in 0..instance.outputs_b.len() {
                check_pair(&instance, oa, ob)?;
            }
        }
    }
}

#[test]
fn arithmetic_miters_agree() {
    for aig in [
        benchgen::adder(4).aig,
        benchgen::multiplier(3).aig,
        benchgen::square(3).aig,
    ] {
        let instance = encode_miter(&aig);
        for o in 0..instance.outputs_a.len() {
            check_pair(&instance, o, o).expect("differential check failed");
        }
        // At least one cross-output pair exercises the Sat path.
        if instance.outputs_a.len() >= 2 {
            check_pair(&instance, 0, 1).expect("differential check failed");
        }
    }
}
