//! Differential timing oracle: an independent, dumb-as-possible topological
//! recompute of arrival times over the final `Netlist` must agree *exactly*
//! (bitwise, no epsilon) with the times the mapper's dynamic program
//! produced, on random circuits and across the mapper's knobs.
//!
//! The oracle deliberately reimplements the timing model from its prose
//! definition — sort leaf arrivals descending, sort pin delays descending,
//! pair rank by rank (padding extra leaves with the slowest pin), arrival =
//! max of the pairwise sums — sharing no code with `techmap::timing`. Since
//! both sides compute each arrival as a max over identical two-operand sums,
//! f64 agreement is exact; any drift in the pairing rule, the cover
//! derivation, or the output-inverter handling shows up as a hard mismatch.
//!
//! `PROPTEST_CASES` scales the coverage (CI pins 2000).

// Helper fns here run outside #[test] context, so the clippy.toml
// test relaxation does not reach them.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use aig::{Aig, NodeId};
use proptest::prelude::*;
use std::collections::HashMap;
use techmap::cell::{try_map_to_cells, Netlist, OutputDriver};
use techmap::library::asap7_like;
use techmap::MapOptions;

/// The oracle's own pairing: worst-case assignment of pin delays to leaves.
fn oracle_gate_arrival(leaf_arrivals: &[f64], pin_delays: &[f64]) -> f64 {
    let mut arrivals: Vec<f64> = leaf_arrivals.to_vec();
    arrivals.sort_by(|a, b| b.total_cmp(a));
    let mut pins: Vec<f64> = pin_delays.to_vec();
    pins.sort_by(|a, b| b.total_cmp(a));
    let slowest = pins.first().copied().unwrap_or(0.0);
    let mut worst = 0.0f64;
    for (rank, a) in arrivals.iter().enumerate() {
        let d = pins.get(rank).copied().unwrap_or(slowest);
        let sum = a + d;
        if sum > worst {
            worst = sum;
        }
    }
    worst
}

/// Recomputes every gate arrival and the critical-path delay of a netlist
/// from scratch, asserting topological gate order along the way.
fn oracle_recompute(netlist: &Netlist, inv_delay_ps: f64) -> (Vec<f64>, f64) {
    let mut arrival: HashMap<NodeId, f64> = HashMap::new();
    let mut gate_arrivals = Vec::with_capacity(netlist.gates.len());
    for gate in &netlist.gates {
        let leaf_arrivals: Vec<f64> = gate
            .leaves
            .iter()
            .map(|l| arrival.get(l).copied().unwrap_or(0.0))
            .collect();
        let arr = oracle_gate_arrival(&leaf_arrivals, &gate.pin_delays_ps);
        assert!(
            !arrival.contains_key(&gate.root),
            "gate root mapped twice: {:?}",
            gate.root
        );
        arrival.insert(gate.root, arr);
        gate_arrivals.push(arr);
    }
    let mut delay = 0.0f64;
    for driver in &netlist.outputs {
        let arr = match driver {
            OutputDriver::Direct(node) => arrival.get(node).copied().unwrap_or(0.0),
            OutputDriver::Inverted(node) => {
                arrival.get(node).copied().unwrap_or(0.0) + inv_delay_ps
            }
            OutputDriver::Constant(_) => continue,
        };
        if arr > delay {
            delay = arr;
        }
    }
    (gate_arrivals, delay)
}

fn check_netlist_against_oracle(aig: &Aig, netlist: &Netlist, inv_delay_ps: f64) {
    // Gate order must be topological over the source AIG ids (the oracle's
    // single forward pass depends on it).
    for gate in &netlist.gates {
        for leaf in &gate.leaves {
            assert!(leaf.index() < gate.root.index(), "leaves precede roots");
        }
    }
    let (gate_arrivals, delay) = oracle_recompute(netlist, inv_delay_ps);
    assert_eq!(
        gate_arrivals.len(),
        netlist.gate_arrivals_ps().len(),
        "one arrival per gate"
    );
    for (g, (oracle, dp)) in gate_arrivals
        .iter()
        .zip(netlist.gate_arrivals_ps())
        .enumerate()
    {
        assert_eq!(
            oracle, dp,
            "arrival mismatch at gate {g} (root {:?}) of {}",
            netlist.gates[g].root, netlist.name
        );
    }
    assert_eq!(delay, netlist.delay_ps(), "critical-path delay mismatch");
    // Required times are consistent with the effective target: every gate
    // has non-negative slack (the target is floored at the critical path).
    assert!(netlist.delay_target_ps() >= delay - 1e-9);
    for gate in &netlist.gates {
        let slack = netlist.slack_ps_of(gate.root).expect("annotated gate");
        assert!(
            slack >= -1e-9,
            "negative slack {slack} at {:?} of {}",
            gate.root,
            netlist.name
        );
    }
    let _ = aig;
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Mapper DP arrivals equal the oracle's on random circuits, across cut
    /// limits, recovery-pass counts and delay targets.
    #[test]
    fn mapper_dp_times_match_oracle(
        seed in 0u64..100_000,
        num_ands in 4usize..80,
        num_inputs in 2usize..8,
        num_outputs in 1usize..4,
        cut_limit in 2usize..10,
        area_passes in 0usize..4,
        // Below 0.5 means "no target" (the vendored proptest stand-in has
        // no Option strategy).
        target_scale in 0.0f64..3.0,
    ) {
        let circuit = benchgen::random_aig(num_inputs, num_ands, num_outputs, seed);
        let library = asap7_like();
        let inv_delay = library.cell(library.inverter().unwrap()).delay_ps;
        // Resolve a concrete target from the delay-optimal critical path.
        let base = try_map_to_cells(
            &circuit,
            &library,
            &MapOptions { area_passes: 0, cut_limit, ..MapOptions::default() },
        ).expect("mappable");
        check_netlist_against_oracle(&circuit, &base, inv_delay);
        let options = MapOptions {
            cut_limit,
            area_passes,
            delay_target_ps: (target_scale >= 0.5).then(|| base.delay_ps() * target_scale),
            ..MapOptions::default()
        };
        let netlist = try_map_to_cells(&circuit, &library, &options).expect("mappable");
        check_netlist_against_oracle(&circuit, &netlist, inv_delay);
        // The recovered netlist never beats the DP-optimal critical path and
        // never busts the effective target.
        prop_assert!(netlist.delay_ps() >= base.delay_ps() - 1e-9);
        prop_assert!(netlist.delay_ps() <= netlist.delay_target_ps() + 1e-9);
        prop_assert!(netlist.worst_slack_ps() >= -1e-9);
    }

    /// The same differential check over choice networks built from real
    /// saturation is covered in `emorphic`'s proptest suite; here the
    /// choice-free path must stay exact under the LUT-style wide cuts too.
    #[test]
    fn oracle_agrees_on_wide_cut_mappings(
        seed in 0u64..100_000,
        num_ands in 4usize..60,
        num_inputs in 2usize..7,
    ) {
        let circuit = benchgen::random_aig(num_inputs, num_ands, 2, seed);
        let library = asap7_like();
        let inv_delay = library.cell(library.inverter().unwrap()).delay_ps;
        // cut_size is clamped to 4 for cells, but a large requested size
        // still exercises the clamping path.
        let options = MapOptions { cut_size: 6, area_passes: 2, ..MapOptions::default() };
        let netlist = try_map_to_cells(&circuit, &library, &options).expect("mappable");
        check_netlist_against_oracle(&circuit, &netlist, inv_delay);
    }
}
