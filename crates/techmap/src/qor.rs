//! Quality-of-results records and table helpers.

use serde::{Deserialize, Serialize};

/// Post-mapping quality metrics of one design (one row of the paper's
/// Table II).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Qor {
    /// Design name.
    pub name: String,
    /// Total standard-cell area in µm².
    pub area_um2: f64,
    /// Critical-path delay in ps.
    pub delay_ps: f64,
    /// Number of logic levels on the critical path.
    pub levels: u32,
    /// Number of mapped gates.
    pub gates: usize,
}

impl Qor {
    /// Computes the geometric mean of a sequence of QoR records (the
    /// `GEOMEAN` row of Table II). Zero entries are clamped to a small
    /// epsilon so all-constant designs do not zero out the mean.
    pub fn geomean(rows: &[Qor]) -> Option<Qor> {
        if rows.is_empty() {
            return None;
        }
        let n = rows.len() as f64;
        let gm = |f: &dyn Fn(&Qor) -> f64| -> f64 {
            (rows.iter().map(|r| f(r).max(1e-9).ln()).sum::<f64>() / n).exp()
        };
        Some(Qor {
            name: "GEOMEAN".to_string(),
            area_um2: gm(&|r| r.area_um2),
            delay_ps: gm(&|r| r.delay_ps),
            levels: gm(&|r| f64::from(r.levels)).round() as u32,
            gates: gm(&|r| r.gates as f64).round() as usize,
        })
    }

    /// The `(area, delay)` pair, the two axes every timing-driven flow
    /// trades against each other.
    pub fn pair(&self) -> (f64, f64) {
        (self.area_um2, self.delay_ps)
    }

    /// Returns `true` if `self` is Pareto-no-worse than `other` on the
    /// (area, delay) pair: at most `eps` worse on both axes.
    pub fn pareto_no_worse(&self, other: &Qor, eps: f64) -> bool {
        self.area_um2 <= other.area_um2 + eps && self.delay_ps <= other.delay_ps + eps
    }

    /// Relative improvement of `self` over `baseline` in percent, per metric
    /// (positive = better, i.e. smaller).
    pub fn improvement_over(&self, baseline: &Qor) -> QorImprovement {
        let pct = |new: f64, old: f64| {
            if old <= 0.0 {
                0.0
            } else {
                (old - new) / old * 100.0
            }
        };
        QorImprovement {
            area_pct: pct(self.area_um2, baseline.area_um2),
            delay_pct: pct(self.delay_ps, baseline.delay_ps),
            level_pct: pct(f64::from(self.levels), f64::from(baseline.levels)),
        }
    }
}

impl std::fmt::Display for Qor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<12} area = {:>12.2} um2  delay = {:>10.2} ps  lev = {:>4}  gates = {:>7}",
            self.name, self.area_um2, self.delay_ps, self.levels, self.gates
        )
    }
}

/// Percentage improvements between two QoR records.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QorImprovement {
    /// Area reduction in percent (positive = smaller area).
    pub area_pct: f64,
    /// Delay reduction in percent.
    pub delay_pct: f64,
    /// Level reduction in percent.
    pub level_pct: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(name: &str, area: f64, delay: f64, lev: u32) -> Qor {
        Qor {
            name: name.into(),
            area_um2: area,
            delay_ps: delay,
            levels: lev,
            gates: 10,
        }
    }

    #[test]
    fn geomean_of_identical_rows_is_identity() {
        let rows = vec![q("a", 100.0, 50.0, 5), q("b", 100.0, 50.0, 5)];
        let gm = Qor::geomean(&rows).unwrap();
        assert!((gm.area_um2 - 100.0).abs() < 1e-6);
        assert!((gm.delay_ps - 50.0).abs() < 1e-6);
        assert_eq!(gm.levels, 5);
    }

    #[test]
    fn geomean_is_between_min_and_max() {
        let rows = vec![q("a", 10.0, 1.0, 2), q("b", 1000.0, 100.0, 50)];
        let gm = Qor::geomean(&rows).unwrap();
        assert!(gm.area_um2 > 10.0 && gm.area_um2 < 1000.0);
        assert!((gm.area_um2 - 100.0).abs() < 1e-6);
        assert!(Qor::geomean(&[]).is_none());
    }

    #[test]
    fn improvement_percentages() {
        let base = q("x", 200.0, 100.0, 10);
        let better = q("x", 150.0, 90.0, 10);
        let imp = better.improvement_over(&base);
        assert!((imp.area_pct - 25.0).abs() < 1e-6);
        assert!((imp.delay_pct - 10.0).abs() < 1e-6);
        assert!((imp.level_pct - 0.0).abs() < 1e-6);
        // A worse result yields negative improvement.
        let worse = q("x", 250.0, 120.0, 12);
        let imp2 = worse.improvement_over(&base);
        assert!(imp2.area_pct < 0.0);
    }

    #[test]
    fn pareto_comparison() {
        let base = q("x", 200.0, 100.0, 10);
        assert_eq!(base.pair(), (200.0, 100.0));
        assert!(q("a", 150.0, 90.0, 9).pareto_no_worse(&base, 1e-9));
        assert!(base.pareto_no_worse(&base, 1e-9));
        // Better area but worse delay is not Pareto-no-worse.
        assert!(!q("b", 150.0, 110.0, 9).pareto_no_worse(&base, 1e-9));
        assert!(!q("c", 210.0, 90.0, 9).pareto_no_worse(&base, 1e-9));
    }

    #[test]
    fn display_contains_all_metrics() {
        let line = q("adder", 1206.99, 584.53, 57).to_string();
        assert!(line.contains("adder"));
        assert!(line.contains("1206.99"));
        assert!(line.contains("584.53"));
        assert!(line.contains("57"));
    }
}
