//! Truth-table utilities for functions of up to six variables.
//!
//! Truth tables are stored in a `u64`: bit `m` is the function value on the
//! input minterm `m` (variable `i` contributes bit `i` of `m`). Functions of
//! fewer than six variables only use the low `2^n` bits.

/// Standard projection masks: `VAR_MASK[i]` is the truth table of variable
/// `i` over six variables.
pub const VAR_MASK: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

/// Returns the all-ones mask for an `nvars`-variable truth table.
#[inline]
pub fn full_mask(nvars: usize) -> u64 {
    if nvars >= 6 {
        u64::MAX
    } else {
        (1u64 << (1usize << nvars)) - 1
    }
}

/// Positive cofactor with respect to variable `var` (result is independent of
/// `var`, replicated across both halves).
#[inline]
pub fn cofactor1(tt: u64, var: usize) -> u64 {
    let shift = 1usize << var;
    let hi = tt & VAR_MASK[var];
    hi | (hi >> shift)
}

/// Negative cofactor with respect to variable `var`.
#[inline]
pub fn cofactor0(tt: u64, var: usize) -> u64 {
    let shift = 1usize << var;
    let lo = tt & !VAR_MASK[var];
    lo | (lo << shift)
}

/// Returns `true` if the function depends on variable `var`.
#[inline]
pub fn depends_on(tt: u64, var: usize, nvars: usize) -> bool {
    let mask = full_mask(nvars);
    (cofactor0(tt, var) ^ cofactor1(tt, var)) & mask != 0
}

/// Returns the indices of the variables the function actually depends on.
pub fn support(tt: u64, nvars: usize) -> Vec<usize> {
    (0..nvars).filter(|&v| depends_on(tt, v, nvars)).collect()
}

/// Number of minterms (ones) of an `nvars`-variable function.
#[inline]
pub fn count_ones(tt: u64, nvars: usize) -> u32 {
    (tt & full_mask(nvars)).count_ones()
}

/// Evaluates the function on a single input assignment (bit `i` of `minterm`
/// is the value of variable `i`).
#[inline]
pub fn eval(tt: u64, minterm: usize) -> bool {
    tt >> minterm & 1 == 1
}

// ---------------------------------------------------------------------------
// Cubes and irredundant sum-of-products (Minato-Morreale)
// ---------------------------------------------------------------------------

/// A product term over at most six variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Cube {
    /// Bit `i` set: variable `i` appears positively.
    pub pos: u8,
    /// Bit `i` set: variable `i` appears negatively.
    pub neg: u8,
}

impl Cube {
    /// The constant-true cube (no literals).
    pub const TRUE: Cube = Cube { pos: 0, neg: 0 };

    /// Number of literals in the cube.
    pub fn num_literals(&self) -> u32 {
        (self.pos | self.neg).count_ones()
    }

    /// Truth table of the cube over `nvars` variables.
    pub fn truth(&self, nvars: usize) -> u64 {
        let mut tt = full_mask(nvars);
        for (v, &mask) in VAR_MASK.iter().enumerate().take(nvars) {
            if self.pos >> v & 1 == 1 {
                tt &= mask;
            }
            if self.neg >> v & 1 == 1 {
                tt &= !mask;
            }
        }
        tt & full_mask(nvars)
    }
}

impl std::fmt::Display for Cube {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.pos == 0 && self.neg == 0 {
            return write!(f, "1");
        }
        for v in 0..6 {
            if self.pos >> v & 1 == 1 {
                write!(f, "{}", (b'a' + v) as char)?;
            }
            if self.neg >> v & 1 == 1 {
                write!(f, "!{}", (b'a' + v) as char)?;
            }
        }
        Ok(())
    }
}

/// Computes an irredundant sum-of-products cover of `tt` over `nvars`
/// variables using the Minato-Morreale ISOP recursion.
pub fn isop(tt: u64, nvars: usize) -> Vec<Cube> {
    let mask = full_mask(nvars);
    let tt = tt & mask;
    let (cubes, cover) = isop_rec(tt, tt, nvars);
    debug_assert_eq!(cover & mask, tt);
    cubes
}

/// ISOP over an interval: lower bound `l` (must cover) and upper bound `u`
/// (may cover). Returns the cubes and the function they cover.
fn isop_rec(l: u64, u: u64, nvars: usize) -> (Vec<Cube>, u64) {
    let mask = full_mask(nvars);
    let l = l & mask;
    let u = u & mask;
    debug_assert_eq!(l & !u, 0, "lower bound must imply upper bound");
    if l == 0 {
        return (Vec::new(), 0);
    }
    if u == mask {
        return (vec![Cube::TRUE], mask);
    }
    // Pick the topmost variable in the support of either bound.
    let var = (0..nvars)
        .rev()
        .find(|&v| depends_on(l, v, nvars) || depends_on(u, v, nvars))
        .unwrap_or_else(|| unreachable!("non-constant interval must depend on some variable"));

    let l0 = cofactor0(l, var) & mask;
    let l1 = cofactor1(l, var) & mask;
    let u0 = cofactor0(u, var) & mask;
    let u1 = cofactor1(u, var) & mask;

    // Cubes that must contain the literal !var.
    let (cubes_neg, f_neg) = isop_rec(l0 & !u1, u0, nvars);
    // Cubes that must contain the literal var.
    let (cubes_pos, f_pos) = isop_rec(l1 & !u0, u1, nvars);
    // Remaining minterms, coverable without mentioning var.
    let l_rest = (l0 & !f_neg) | (l1 & !f_pos);
    let (cubes_rest, f_rest) = isop_rec(l_rest, u0 & u1, nvars);

    let mut cubes = Vec::with_capacity(cubes_neg.len() + cubes_pos.len() + cubes_rest.len());
    for mut c in cubes_neg {
        c.neg |= 1 << var;
        cubes.push(c);
    }
    for mut c in cubes_pos {
        c.pos |= 1 << var;
        cubes.push(c);
    }
    cubes.extend(cubes_rest);

    let vmask = VAR_MASK[var];
    let cover = ((f_neg & !vmask) | (f_pos & vmask) | f_rest) & mask;
    debug_assert_eq!(l & !cover, 0);
    debug_assert_eq!(cover & !u, 0);
    (cubes, cover)
}

/// Evaluates a cube cover back into a truth table (used for verification).
pub fn cover_truth(cubes: &[Cube], nvars: usize) -> u64 {
    cubes.iter().fold(0u64, |acc, c| acc | c.truth(nvars))
}

// ---------------------------------------------------------------------------
// NPN canonicalization for functions of up to four variables
// ---------------------------------------------------------------------------

/// Applies an input permutation, input phase flips and an output phase to a
/// 4-variable truth table.
pub fn transform_tt4(tt: u16, perm: &[usize; 4], input_flips: u8, output_flip: bool) -> u16 {
    let mut out: u16 = 0;
    for minterm in 0..16u16 {
        // Build the source minterm: variable perm[i] of the source takes the
        // (possibly flipped) value of variable i of the destination.
        let mut src = 0u16;
        for (dst_var, &src_var) in perm.iter().enumerate() {
            let mut bit = minterm >> dst_var & 1;
            if input_flips >> dst_var & 1 == 1 {
                bit ^= 1;
            }
            if bit == 1 {
                src |= 1 << src_var;
            }
        }
        let mut value = tt >> src & 1;
        if output_flip {
            value ^= 1;
        }
        if value == 1 {
            out |= 1 << minterm;
        }
    }
    out
}

const PERMS4: [[usize; 4]; 24] = [
    [0, 1, 2, 3],
    [0, 1, 3, 2],
    [0, 2, 1, 3],
    [0, 2, 3, 1],
    [0, 3, 1, 2],
    [0, 3, 2, 1],
    [1, 0, 2, 3],
    [1, 0, 3, 2],
    [1, 2, 0, 3],
    [1, 2, 3, 0],
    [1, 3, 0, 2],
    [1, 3, 2, 0],
    [2, 0, 1, 3],
    [2, 0, 3, 1],
    [2, 1, 0, 3],
    [2, 1, 3, 0],
    [2, 3, 0, 1],
    [2, 3, 1, 0],
    [3, 0, 1, 2],
    [3, 0, 2, 1],
    [3, 1, 0, 2],
    [3, 1, 2, 0],
    [3, 2, 0, 1],
    [3, 2, 1, 0],
];

/// Computes the NPN-canonical representative of a 4-variable truth table:
/// the minimum value over all input permutations, input negations and output
/// negation. Functions of fewer variables should be zero-extended to four
/// variables (i.e. made independent of the unused variables) first.
pub fn npn_canon4(tt: u16) -> u16 {
    let mut best = u16::MAX;
    for perm in &PERMS4 {
        for flips in 0..16u8 {
            for out_flip in [false, true] {
                let t = transform_tt4(tt, perm, flips, out_flip);
                if t < best {
                    best = t;
                }
            }
        }
    }
    best
}

/// Expands an `nvars`-variable truth table (`nvars <= 4`) into a 4-variable
/// table that ignores the extra variables.
pub fn expand_to_4(tt: u64, nvars: usize) -> u16 {
    assert!(nvars <= 4, "expand_to_4 requires at most 4 variables");
    let bits = 1usize << nvars;
    let mut out: u16 = 0;
    for m in 0..16usize {
        if tt >> (m % bits) & 1 == 1 {
            out |= 1 << m;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const AND2: u64 = 0b1000;
    const OR2: u64 = 0b1110;
    const XOR2: u64 = 0b0110;

    #[test]
    fn masks_are_projections() {
        for (v, &mask) in VAR_MASK.iter().enumerate() {
            for m in 0..64usize {
                assert_eq!(eval(mask, m), m >> v & 1 == 1);
            }
        }
    }

    #[test]
    fn cofactors_of_and() {
        // f = a & b (2 vars): f|a=1 is b, f|a=0 is 0.
        let f = AND2;
        assert_eq!(cofactor1(f, 0) & full_mask(2), 0b1100);
        assert_eq!(cofactor0(f, 0) & full_mask(2), 0);
        assert_eq!(cofactor1(f, 1) & full_mask(2), 0b1010);
    }

    #[test]
    fn support_detection() {
        assert_eq!(support(AND2, 2), vec![0, 1]);
        assert_eq!(support(VAR_MASK[0], 3), vec![0]);
        assert_eq!(support(0, 4), Vec::<usize>::new());
        assert_eq!(support(full_mask(4), 4), Vec::<usize>::new());
    }

    #[test]
    fn isop_of_simple_functions() {
        // AND: one cube with two positive literals.
        let cubes = isop(AND2, 2);
        assert_eq!(cubes.len(), 1);
        assert_eq!(cubes[0].num_literals(), 2);
        assert_eq!(cover_truth(&cubes, 2), AND2);
        // OR: two cubes of one literal each.
        let cubes = isop(OR2, 2);
        assert_eq!(cover_truth(&cubes, 2), OR2);
        assert!(cubes.len() <= 2);
        // XOR: two cubes of two literals.
        let cubes = isop(XOR2, 2);
        assert_eq!(cubes.len(), 2);
        assert_eq!(cover_truth(&cubes, 2), XOR2);
        // Constants.
        assert!(isop(0, 3).is_empty());
        assert_eq!(isop(full_mask(3), 3), vec![Cube::TRUE]);
    }

    #[test]
    fn isop_covers_random_functions_exactly() {
        // Deterministic pseudo-random functions over 4..6 variables.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for nvars in 2..=6usize {
            for _ in 0..50 {
                let tt = next() & full_mask(nvars);
                let cubes = isop(tt, nvars);
                assert_eq!(cover_truth(&cubes, nvars), tt, "nvars={nvars} tt={tt:#x}");
            }
        }
    }

    #[test]
    fn isop_is_irredundant_for_majority() {
        // MAJ3 = ab + bc + ac: exactly three 2-literal cubes.
        let a = VAR_MASK[0];
        let b = VAR_MASK[1];
        let c = VAR_MASK[2];
        let maj = (a & b | b & c | a & c) & full_mask(3);
        let cubes = isop(maj, 3);
        assert_eq!(cubes.len(), 3);
        assert!(cubes.iter().all(|c| c.num_literals() == 2));
    }

    #[test]
    fn cube_truth_and_display() {
        let cube = Cube {
            pos: 0b001,
            neg: 0b010,
        };
        // a & !b over 2 vars: minterm 1 only.
        assert_eq!(cube.truth(2), 0b0010);
        assert_eq!(cube.to_string(), "a!b");
        assert_eq!(Cube::TRUE.to_string(), "1");
        assert_eq!(Cube::TRUE.truth(2), full_mask(2));
    }

    #[test]
    fn npn_groups_related_functions_together() {
        // AND with any input/output phases is NPN-equivalent to NOR, NAND, etc.
        let and4 = expand_to_4(AND2, 2);
        let nand4 = expand_to_4(!AND2 & full_mask(2), 2);
        let or4 = expand_to_4(OR2, 2);
        let nor4 = expand_to_4(!OR2 & full_mask(2), 2);
        let canon = npn_canon4(and4);
        assert_eq!(npn_canon4(nand4), canon);
        assert_eq!(npn_canon4(or4), canon);
        assert_eq!(npn_canon4(nor4), canon);
        // XOR is in a different class.
        assert_ne!(npn_canon4(expand_to_4(XOR2, 2)), canon);
    }

    #[test]
    fn npn_is_invariant_under_permutation() {
        // f = a & !b & c  vs  g = c & !a & b (a permutation + phases of f).
        let f = VAR_MASK[0] & !VAR_MASK[1] & VAR_MASK[2] & full_mask(3);
        let g = VAR_MASK[2] & !VAR_MASK[0] & VAR_MASK[1] & full_mask(3);
        assert_eq!(npn_canon4(expand_to_4(f, 3)), npn_canon4(expand_to_4(g, 3)));
    }

    #[test]
    fn transform_identity_is_noop() {
        for tt in [0x8000u16, 0x6996, 0x1234, 0xFFFF, 0x0000] {
            assert_eq!(transform_tt4(tt, &[0, 1, 2, 3], 0, false), tt);
        }
    }

    #[test]
    fn expand_to_4_ignores_missing_vars() {
        let and4 = expand_to_4(AND2, 2);
        // The expanded function must not depend on variables 2 and 3.
        assert!(!depends_on(and4 as u64, 2, 4));
        assert!(!depends_on(and4 as u64, 3, 4));
        assert!(depends_on(and4 as u64, 0, 4));
    }
}
