//! Delay-oriented K-LUT mapping with area-flow recovery.
//!
//! This is the `if -K k -C c` analogue: every AND node picks the cut that
//! minimizes its arrival time (LUT levels), an optional area-flow pass then
//! re-selects cuts off the critical path to reduce the LUT count, and the
//! final cover is derived from the primary outputs.

use crate::cuts::{enumerate_cuts, enumerate_cuts_with_choices, Cut, CutSet, CutsOptions};
use crate::MapOptions;
use aig::{Aig, AigNode, NodeId};
use choices::ChoiceAig;

/// One mapped LUT: a root node implemented as a lookup table over the cut
/// leaves.
#[derive(Debug, Clone)]
pub struct Lut {
    /// The AND node implemented by this LUT.
    pub root: NodeId,
    /// The selected cut (leaves + truth table).
    pub cut: Cut,
}

/// The result of LUT mapping.
#[derive(Debug, Clone)]
pub struct LutMapping {
    /// Selected LUTs in topological order (fanins before fanouts).
    pub luts: Vec<Lut>,
    /// LUT depth of the mapping (levels on the longest PI→PO path).
    pub depth: u32,
    /// Per-node arrival times in LUT levels over the *final cover* (LUTs
    /// use the load-independent unit-delay model: every pin costs 1 level).
    /// Inputs, constants and AND nodes outside the cover read 0 — only
    /// covered roots carry a meaningful arrival.
    pub arrival: Vec<u32>,
    /// Per-node required times in LUT levels, propagated backward from the
    /// effective depth target (nodes off the cover stay at the target).
    pub required: Vec<u32>,
    /// The effective depth target: the requested
    /// [`crate::MapOptions::delay_target_levels`], floored at the
    /// delay-optimal depth.
    pub target_levels: u32,
}

impl LutMapping {
    /// Number of LUTs in the cover.
    pub fn num_luts(&self) -> usize {
        self.luts.len()
    }

    /// Slack of a *covered* node in levels: required minus arrival
    /// (saturating at 0 from below; the unit-delay model cannot miss its
    /// own floor). Off-cover nodes read the full target — their arrival
    /// slot is 0 and their requirement is permissive.
    pub fn slack(&self, node: NodeId) -> u32 {
        self.required[node.index()].saturating_sub(self.arrival[node.index()])
    }
}

#[derive(Clone)]
struct Choice {
    cut_index: usize,
    arrival: u32,
    area_flow: f64,
}

/// Maps `aig` onto K-input LUTs.
pub fn map_to_luts(aig: &Aig, options: &MapOptions) -> LutMapping {
    let cut_options = CutsOptions {
        cut_size: options.cut_size,
        cut_limit: options.cut_limit,
    };
    let cuts = enumerate_cuts(aig, &cut_options);
    map_luts_with_cuts(aig, &cuts, options)
}

/// Maps a choice network onto K-input LUTs: every choice-class
/// representative selects its cut (and thus its LUT function) across the cut
/// sets of *all* members of the class, so the cover can mix structures from
/// different recorded implementations.
pub fn map_to_luts_with_choices(choices: &ChoiceAig, options: &MapOptions) -> LutMapping {
    let cut_options = CutsOptions {
        cut_size: options.cut_size,
        cut_limit: options.cut_limit,
    };
    let cuts = enumerate_cuts_with_choices(choices, &cut_options);
    map_luts_with_cuts(choices.aig(), &cuts, options)
}

/// The shared LUT covering core over an already enumerated cut set.
fn map_luts_with_cuts(aig: &Aig, cuts: &CutSet, options: &MapOptions) -> LutMapping {
    let fanouts = aig.fanout_counts();

    let mut arrival = vec![0u32; aig.num_nodes()];
    let mut area_flow = vec![0f64; aig.num_nodes()];
    let mut choice: Vec<Option<Choice>> = (0..aig.num_nodes()).map(|_| None).collect();

    // Delay-oriented pass.
    for id in aig.and_ids() {
        let node_cuts = cuts.cuts(id);
        let mut best: Option<Choice> = None;
        for (ci, cut) in node_cuts.iter().enumerate() {
            if cut.leaves == [id] {
                continue; // trivial cut cannot implement the node
            }
            let arr = 1 + cut
                .leaves
                .iter()
                .map(|l| arrival[l.index()])
                .max()
                .unwrap_or(0);
            let af = 1.0
                + cut
                    .leaves
                    .iter()
                    .map(|l| area_flow[l.index()] / f64::max(1.0, fanouts[l.index()] as f64))
                    .sum::<f64>();
            let better = match &best {
                None => true,
                Some(b) => (arr, af) < (b.arrival, b.area_flow),
            };
            if better {
                best = Some(Choice {
                    cut_index: ci,
                    arrival: arr,
                    area_flow: af,
                });
            }
        }
        let best =
            best.unwrap_or_else(|| unreachable!("every AND node has at least one non-trivial cut"));
        arrival[id.index()] = best.arrival;
        area_flow[id.index()] = best.area_flow;
        choice[id.index()] = Some(best);
    }

    let depth = aig
        .outputs()
        .iter()
        .map(|l| arrival[l.node().index()])
        .max()
        .unwrap_or(0);
    // The effective depth target: a requested target below the achievable
    // depth is floored at it; a looser one frees slack for area recovery.
    let target = options.delay_target_levels.unwrap_or(depth).max(depth);

    let mut best_cover = measure_cover(aig, cuts, &choice);
    let mut best_state = (choice.clone(), arrival.clone(), area_flow.clone());

    // Area-flow recovery passes: keep arrival within the required time while
    // minimizing area flow; each pass is measured exactly and rolled back
    // unless it strictly shrinks the cover without exceeding the target.
    for _ in 0..options.area_passes {
        let required = compute_required(aig, cuts, &choice, target);
        for id in aig.and_ids() {
            let node_cuts = cuts.cuts(id);
            let mut best: Option<Choice> = None;
            for (ci, cut) in node_cuts.iter().enumerate() {
                if cut.leaves == [id] {
                    continue;
                }
                let arr = 1 + cut
                    .leaves
                    .iter()
                    .map(|l| arrival[l.index()])
                    .max()
                    .unwrap_or(0);
                if arr > required[id.index()] {
                    continue;
                }
                let af = 1.0
                    + cut
                        .leaves
                        .iter()
                        .map(|l| area_flow[l.index()] / f64::max(1.0, fanouts[l.index()] as f64))
                        .sum::<f64>();
                let better = match &best {
                    None => true,
                    Some(b) => (af, arr) < (b.area_flow, b.arrival),
                };
                if better {
                    best = Some(Choice {
                        cut_index: ci,
                        arrival: arr,
                        area_flow: af,
                    });
                }
            }
            if let Some(best) = best {
                arrival[id.index()] = best.arrival;
                area_flow[id.index()] = best.area_flow;
                choice[id.index()] = Some(best);
            }
        }
        let cover = measure_cover(aig, cuts, &choice);
        if cover.1 <= target && cover.0 < best_cover.0 {
            best_cover = cover;
            best_state = (choice.clone(), arrival.clone(), area_flow.clone());
        } else {
            // Roll back the whole DP state (selection *and* the arrival /
            // area-flow arrays), so the next pass evaluates candidates
            // against the accepted selection, not the rejected one.
            (choice, arrival, area_flow) = best_state.clone();
        }
    }
    let (choice, _, _) = best_state;

    // Derive the cover and its fresh arrival times from the kept selection.
    let (needed, arrival) = cover_arrivals(aig, cuts, &choice);
    let mut luts = Vec::new();
    for id in aig.and_ids() {
        if needed[id.index()] {
            let ch = choice[id.index()]
                .as_ref()
                .unwrap_or_else(|| unreachable!("mapped node"));
            luts.push(Lut {
                root: id,
                cut: cuts.cuts(id)[ch.cut_index].clone(),
            });
        }
    }
    let required = compute_required(aig, cuts, &choice, target);

    LutMapping {
        luts,
        depth: best_cover.1,
        arrival,
        required,
        target_levels: target,
    }
}

/// Marks the cover induced by `choice` and recomputes its arrival times
/// bottom-up over the covered nodes only.
fn cover_arrivals(
    aig: &Aig,
    cuts: &crate::cuts::CutSet,
    choice: &[Option<Choice>],
) -> (Vec<bool>, Vec<u32>) {
    let mut needed = vec![false; aig.num_nodes()];
    let mut stack: Vec<NodeId> = aig
        .outputs()
        .iter()
        .map(|l| l.node())
        .filter(|n| aig.node(*n).is_and())
        .collect();
    while let Some(id) = stack.pop() {
        if needed[id.index()] {
            continue;
        }
        needed[id.index()] = true;
        let ch = choice[id.index()]
            .as_ref()
            .unwrap_or_else(|| unreachable!("mapped node"));
        for leaf in &cuts.cuts(id)[ch.cut_index].leaves {
            if aig.node(*leaf).is_and() {
                stack.push(*leaf);
            }
        }
    }
    let mut arrival = vec![0u32; aig.num_nodes()];
    for id in aig.and_ids() {
        if !needed[id.index()] {
            continue;
        }
        let ch = choice[id.index()]
            .as_ref()
            .unwrap_or_else(|| unreachable!("mapped node"));
        arrival[id.index()] = 1 + cuts.cuts(id)[ch.cut_index]
            .leaves
            .iter()
            .map(|l| arrival[l.index()])
            .max()
            .unwrap_or(0);
    }
    (needed, arrival)
}

/// Exact (LUT count, depth) of the cover induced by `choice`.
fn measure_cover(aig: &Aig, cuts: &crate::cuts::CutSet, choice: &[Option<Choice>]) -> (usize, u32) {
    let (needed, arrival) = cover_arrivals(aig, cuts, choice);
    let num_luts = needed.iter().filter(|&&n| n).count();
    let depth = aig
        .outputs()
        .iter()
        .map(|l| arrival[l.node().index()])
        .max()
        .unwrap_or(0);
    (num_luts, depth)
}

fn compute_required(
    aig: &Aig,
    cuts: &crate::cuts::CutSet,
    choice: &[Option<Choice>],
    target: u32,
) -> Vec<u32> {
    let mut required = vec![u32::MAX; aig.num_nodes()];
    for po in aig.outputs() {
        let idx = po.node().index();
        required[idx] = target;
    }
    // Reverse topological order.
    for id in aig.and_ids().collect::<Vec<_>>().into_iter().rev() {
        if required[id.index()] == u32::MAX {
            continue;
        }
        if let Some(ch) = &choice[id.index()] {
            let req = required[id.index()].saturating_sub(1);
            for leaf in &cuts.cuts(id)[ch.cut_index].leaves {
                if required[leaf.index()] > req {
                    required[leaf.index()] = req;
                }
            }
        }
    }
    // Unconstrained nodes keep a permissive requirement.
    for r in &mut required {
        if *r == u32::MAX {
            *r = target;
        }
    }
    required
}

/// Evaluates a LUT mapping on one input pattern (used for verification).
pub fn evaluate_mapping(aig: &Aig, mapping: &LutMapping, inputs: &[bool]) -> Vec<bool> {
    let mut values = vec![false; aig.num_nodes()];
    for (i, &input) in aig.inputs().iter().enumerate() {
        values[input.index()] = inputs[i];
    }
    for lut in &mapping.luts {
        let mut minterm = 0usize;
        for (i, leaf) in lut.cut.leaves.iter().enumerate() {
            if values[leaf.index()] {
                minterm |= 1 << i;
            }
        }
        values[lut.root.index()] = lut.cut.truth >> minterm & 1 == 1;
    }
    aig.outputs()
        .iter()
        .map(|po| {
            let base = match aig.node(po.node()) {
                AigNode::Const => false,
                _ => values[po.node().index()],
            };
            base ^ po.is_complemented()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adder(width: usize) -> Aig {
        let mut aig = Aig::new("adder");
        let a: Vec<_> = (0..width).map(|i| aig.add_input(format!("a{i}"))).collect();
        let b: Vec<_> = (0..width).map(|i| aig.add_input(format!("b{i}"))).collect();
        let mut carry = aig::Lit::FALSE;
        for i in 0..width {
            let axb = aig.xor(a[i], b[i]);
            let sum = aig.xor(axb, carry);
            let cout = aig.maj3(a[i], b[i], carry);
            aig.add_output(sum, format!("s{i}"));
            carry = cout;
        }
        aig.add_output(carry, "cout");
        aig
    }

    #[test]
    fn mapping_preserves_function() {
        let aig = adder(3);
        let mapping = map_to_luts(&aig, &MapOptions::lut6());
        for pattern in 0..64usize {
            let bits: Vec<bool> = (0..6).map(|i| pattern >> i & 1 == 1).collect();
            assert_eq!(
                evaluate_mapping(&aig, &mapping, &bits),
                aig.evaluate(&bits),
                "pattern {pattern}"
            );
        }
    }

    #[test]
    fn lut6_depth_not_worse_than_lut4() {
        let aig = adder(8);
        let m6 = map_to_luts(&aig, &MapOptions::lut6());
        let m4 = map_to_luts(
            &aig,
            &MapOptions {
                cut_size: 4,
                ..MapOptions::default()
            },
        );
        assert!(m6.depth <= m4.depth);
        assert!(m6.depth >= 1);
    }

    #[test]
    fn depth_is_much_smaller_than_aig_depth() {
        let aig = adder(8);
        let mapping = map_to_luts(&aig, &MapOptions::lut6());
        assert!(mapping.depth < aig.depth());
        assert!(mapping.num_luts() < aig.num_ands());
    }

    #[test]
    fn cover_contains_output_roots() {
        let aig = adder(2);
        let mapping = map_to_luts(&aig, &MapOptions::default());
        for po in aig.outputs() {
            if aig.node(po.node()).is_and() {
                assert!(
                    mapping.luts.iter().any(|l| l.root == po.node()),
                    "output root {:?} not covered",
                    po.node()
                );
            }
        }
    }

    #[test]
    fn area_pass_does_not_increase_depth() {
        let aig = adder(6);
        let with_area = map_to_luts(&aig, &MapOptions::lut6());
        let without_area = map_to_luts(
            &aig,
            &MapOptions {
                cut_size: 6,
                area_passes: 0,
                ..MapOptions::default()
            },
        );
        assert_eq!(with_area.depth, without_area.depth);
        assert!(with_area.num_luts() <= without_area.num_luts() + 2);
    }

    #[test]
    fn constant_and_passthrough_outputs() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        aig.add_output(aig::Lit::TRUE, "one");
        aig.add_output(a, "a");
        aig.add_output(a.not(), "na");
        let mapping = map_to_luts(&aig, &MapOptions::default());
        assert_eq!(mapping.num_luts(), 0);
        assert_eq!(mapping.depth, 0);
        assert_eq!(
            evaluate_mapping(&aig, &mapping, &[true]),
            vec![true, true, false]
        );
        assert_eq!(
            evaluate_mapping(&aig, &mapping, &[false]),
            vec![true, false, true]
        );
    }
}
