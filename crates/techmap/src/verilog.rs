//! Structural Verilog writer for mapped netlists.
//!
//! The mapped [`Netlist`](crate::Netlist) can be dumped as a gate-level
//! Verilog module instantiating the library cells, which is the natural hand-
//! off point to downstream place-and-route or sign-off tools.

use crate::cell::{Netlist, OutputDriver};
use aig::{Aig, NodeId};

fn wire_name(aig: &Aig, node: NodeId) -> String {
    match aig.node(node) {
        aig::AigNode::Input { index } => sanitize(aig.input_name(*index as usize)),
        _ => format!("n{}", node.0),
    }
}

fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        format!("w_{cleaned}")
    } else {
        cleaned
    }
}

/// Emits the mapped netlist as a structural Verilog module.
///
/// Cell pins are named `a`, `b`, `c`, `d` in leaf order with output `y`,
/// matching the generic library of this workspace.
pub fn write_verilog(netlist: &Netlist, aig: &Aig) -> String {
    let module = sanitize(&netlist.name);
    let inputs: Vec<String> = aig.input_names().iter().map(|n| sanitize(n)).collect();
    let outputs: Vec<String> = aig.output_names().iter().map(|n| sanitize(n)).collect();

    let mut out = String::new();
    out.push_str(&format!(
        "// mapped by the emorphic workspace: {:.2} um2, {:.2} ps, {} levels\n",
        netlist.area_um2(),
        netlist.delay_ps(),
        netlist.levels()
    ));
    out.push_str(&format!("module {module} (\n"));
    let mut ports: Vec<String> = inputs
        .iter()
        .map(|n| format!("  input  wire {n}"))
        .collect();
    ports.extend(outputs.iter().map(|n| format!("  output wire {n}")));
    out.push_str(&ports.join(",\n"));
    out.push_str("\n);\n\n");

    // Internal wires: one per mapped gate root.
    for gate in &netlist.gates {
        out.push_str(&format!("  wire n{};\n", gate.root.0));
    }
    out.push('\n');

    // Gate instances.
    for (index, gate) in netlist.gates.iter().enumerate() {
        let pins: Vec<String> = gate
            .leaves
            .iter()
            .enumerate()
            .map(|(i, leaf)| {
                let pin = (b'a' + i as u8) as char;
                format!(".{pin}({})", wire_name(aig, *leaf))
            })
            .collect();
        out.push_str(&format!(
            "  {} u{index} ({}, .y(n{}));\n",
            gate.cell_name,
            pins.join(", "),
            gate.root.0
        ));
    }
    out.push('\n');

    // Output assignments (inverters become explicit instances).
    let mut inv_index = 0usize;
    for (i, driver) in netlist.outputs.iter().enumerate() {
        let name = &outputs[i];
        match driver {
            OutputDriver::Constant(value) => {
                out.push_str(&format!("  assign {name} = 1'b{};\n", u8::from(*value)));
            }
            OutputDriver::Direct(node) => {
                out.push_str(&format!("  assign {name} = {};\n", wire_name(aig, *node)));
            }
            OutputDriver::Inverted(node) => {
                out.push_str(&format!(
                    "  INVx1 u_inv{inv_index} (.a({}), .y({name}));\n",
                    wire_name(aig, *node)
                ));
                inv_index += 1;
            }
        }
    }
    out.push_str("endmodule\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::map_to_cells;
    use crate::library::asap7_like;
    use crate::MapOptions;

    fn mapped_sample() -> (Aig, Netlist) {
        let mut aig = Aig::new("sample top");
        let a = aig.add_input("a");
        let b = aig.add_input("b[1]");
        let c = aig.add_input("3c");
        let x = aig.xor(a, b);
        let f = aig.mux(c, x, a);
        aig.add_output(f, "f");
        aig.add_output(f.not(), "f_n");
        aig.add_output(aig::Lit::TRUE, "const_one");
        let netlist = map_to_cells(&aig, &asap7_like(), &MapOptions::default());
        (aig, netlist)
    }

    #[test]
    fn verilog_module_has_all_ports_and_instances() {
        let (aig, netlist) = mapped_sample();
        let text = write_verilog(&netlist, &aig);
        assert!(text.contains("module sample_top ("));
        assert!(text.contains("input  wire a"));
        assert!(text.contains("input  wire b_1_"));
        assert!(text.contains("input  wire w_3c"));
        assert!(text.contains("output wire f"));
        assert!(text.contains("endmodule"));
        // One instance per mapped gate plus one inverter for the inverted output.
        assert!(text.matches(" u").count() >= netlist.gates.len());
        assert!(text.contains("INVx1 u_inv0"));
        assert!(text.contains("assign const_one = 1'b1;"));
    }

    #[test]
    fn identifiers_are_sanitized() {
        let (aig, netlist) = mapped_sample();
        let text = write_verilog(&netlist, &aig);
        assert!(!text.contains("b[1]"));
        assert!(!text.contains(" 3c"));
    }

    #[test]
    fn every_gate_output_wire_is_declared() {
        let (aig, netlist) = mapped_sample();
        let text = write_verilog(&netlist, &aig);
        for gate in &netlist.gates {
            assert!(text.contains(&format!("wire n{};", gate.root.0)));
        }
    }
}
