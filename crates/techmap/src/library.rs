//! Standard-cell libraries.
//!
//! The E-morphic paper evaluates post-mapping quality with the ASAP 7-nm
//! predictive PDK. We reproduce the role of that library with a built-in
//! generic cell set ([`asap7_like`]) whose areas (µm²) and delays (ps) are in
//! the same ballpark as typical 7-nm standard cells. Only the Boolean
//! function, the area and a single pin-to-output delay matter to the mapper.

use crate::truth::{expand_to_4, npn_canon4};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A combinational standard cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    /// Cell name (e.g. `NAND2`).
    pub name: String,
    /// Number of inputs (at most 4).
    pub num_inputs: usize,
    /// Truth table over `num_inputs` variables (low `2^n` bits).
    pub function: u16,
    /// Cell area in µm².
    pub area_um2: f64,
    /// Worst-case pin-to-output delay in ps (the maximum of
    /// [`Cell::pin_delays_ps`]).
    pub delay_ps: f64,
    /// Load-independent pin-to-output delay of each input pin in ps, in
    /// library pin order. Boolean matching does not track the NPN input
    /// permutation, so the mapper pairs these with cut-leaf arrivals through
    /// the conservative sorted pairing of [`crate::timing`] rather than by
    /// position.
    pub pin_delays_ps: Vec<f64>,
}

impl Cell {
    /// Creates a cell with a uniform pin-to-output delay on every input pin.
    pub fn new(
        name: impl Into<String>,
        num_inputs: usize,
        function: u16,
        area_um2: f64,
        delay_ps: f64,
    ) -> Self {
        Cell::with_pin_delays(
            name,
            num_inputs,
            function,
            area_um2,
            vec![delay_ps; num_inputs],
        )
    }

    /// Creates a cell with an explicit pin-to-output delay per input pin.
    ///
    /// # Panics
    /// Panics if the arity exceeds 4 or `pin_delays_ps` does not list exactly
    /// one delay per input pin.
    pub fn with_pin_delays(
        name: impl Into<String>,
        num_inputs: usize,
        function: u16,
        area_um2: f64,
        pin_delays_ps: Vec<f64>,
    ) -> Self {
        assert!(
            num_inputs <= 4,
            "cells of more than 4 inputs are not supported"
        );
        assert_eq!(
            pin_delays_ps.len(),
            num_inputs,
            "one pin delay per input pin"
        );
        let delay_ps = pin_delays_ps.iter().copied().fold(0.0, f64::max);
        Cell {
            name: name.into(),
            num_inputs,
            function,
            area_um2,
            delay_ps,
            pin_delays_ps,
        }
    }

    /// NPN-canonical form of the cell function (over 4 variables).
    pub fn npn_class(&self) -> u16 {
        npn_canon4(expand_to_4(self.function as u64, self.num_inputs))
    }
}

/// A set of cells indexed by NPN class for Boolean matching.
#[derive(Debug, Clone, Default)]
pub struct CellLibrary {
    cells: Vec<Cell>,
    by_npn: HashMap<u16, Vec<usize>>,
    inverter: Option<usize>,
    buffer: Option<usize>,
}

impl CellLibrary {
    /// Creates an empty library.
    pub fn new() -> Self {
        CellLibrary::default()
    }

    /// Adds a cell and indexes it by NPN class. Returns its index.
    pub fn add(&mut self, cell: Cell) -> usize {
        let idx = self.cells.len();
        let class = cell.npn_class();
        self.by_npn.entry(class).or_default().push(idx);
        // Track special cells for phase fixing.
        if cell.num_inputs == 1 && cell.function == 0b01 {
            self.inverter.get_or_insert(idx);
        }
        if cell.num_inputs == 1 && cell.function == 0b10 {
            self.buffer.get_or_insert(idx);
        }
        self.cells.push(cell);
        idx
    }

    /// Number of cells in the library.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Returns `true` if the library has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Returns the cell at `index`.
    pub fn cell(&self, index: usize) -> &Cell {
        &self.cells[index]
    }

    /// Iterates over all cells.
    pub fn cells(&self) -> impl Iterator<Item = &Cell> {
        self.cells.iter()
    }

    /// Returns the index of the inverter cell, if the library has one.
    pub fn inverter(&self) -> Option<usize> {
        self.inverter
    }

    /// Returns the index of the buffer cell, if the library has one.
    pub fn buffer(&self) -> Option<usize> {
        self.buffer
    }

    /// Finds the best (smallest-area) cell matching the given 4-variable
    /// truth table up to NPN equivalence, considering only cells with at
    /// least `min_inputs` inputs used.
    pub fn match_function(&self, tt4: u16) -> Option<usize> {
        let class = npn_canon4(tt4);
        self.by_npn.get(&class).and_then(|candidates| {
            candidates.iter().copied().min_by(|&a, &b| {
                self.cells[a]
                    .area_um2
                    .partial_cmp(&self.cells[b].area_um2)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
        })
    }

    /// Total number of distinct NPN classes covered by the library.
    pub fn num_npn_classes(&self) -> usize {
        self.by_npn.len()
    }
}

/// Truth-table helpers for building libraries (2-input tables use bits 0..4,
/// 3-input tables bits 0..8, 4-input tables bits 0..16).
mod tt {
    pub const A: u16 = 0xAAAA;
    pub const B: u16 = 0xCCCC;
    pub const C: u16 = 0xF0F0;
    pub const D: u16 = 0xFF00;

    pub const fn mask(n: usize) -> u16 {
        if n >= 4 {
            0xFFFF
        } else {
            (1u16 << (1usize << n)) - 1
        }
    }
}

/// Builds the built-in 7-nm-style generic library used throughout the
/// reproduction (the ASAP7 stand-in).
///
/// Areas are in µm² and delays in ps, chosen to be representative of a
/// 7.5-track 7-nm library: an inverter is ~0.05 µm² and ~10 ps, a NAND2
/// ~0.07 µm² and ~14 ps, with complex cells scaled accordingly. Each
/// multi-input cell lists one delay per input pin: the first pin is the
/// slowest (the value historically reported as the cell delay) and later
/// pins are progressively faster, the usual stack-position asymmetry of
/// static CMOS gates.
pub fn asap7_like() -> CellLibrary {
    use tt::{mask, A, B, C, D};
    let mut lib = CellLibrary::new();
    let m2 = mask(2);
    let m3 = mask(3);
    let m4 = mask(4);

    /// Spreads a worst-case delay over `n` pins: pin 0 keeps `worst`, each
    /// later pin is 8% faster than the previous one.
    fn pins(worst: f64, n: usize) -> Vec<f64> {
        (0..n).map(|i| worst * 0.92f64.powi(i as i32)).collect()
    }

    // Single-input cells.
    lib.add(Cell::new("INVx1", 1, !A & mask(1), 0.0486, 10.0));
    lib.add(Cell::new("BUFx2", 1, A & mask(1), 0.0648, 16.0));

    // Two-input cells.
    let cell2 = |name: &str, f: u16, area: f64, worst: f64| {
        Cell::with_pin_delays(name, 2, f & m2, area, pins(worst, 2))
    };
    lib.add(cell2("NAND2x1", !(A & B), 0.0648, 14.0));
    lib.add(cell2("NOR2x1", !(A | B), 0.0648, 15.0));
    lib.add(cell2("AND2x2", A & B, 0.0810, 20.0));
    lib.add(cell2("OR2x2", A | B, 0.0810, 21.0));
    lib.add(cell2("XOR2x1", A ^ B, 0.1134, 26.0));
    lib.add(cell2("XNOR2x1", !(A ^ B), 0.1134, 26.0));

    // Three-input cells.
    let cell3 = |name: &str, f: u16, area: f64, worst: f64| {
        Cell::with_pin_delays(name, 3, f & m3, area, pins(worst, 3))
    };
    lib.add(cell3("NAND3x1", !(A & B & C), 0.0810, 18.0));
    lib.add(cell3("NOR3x1", !(A | B | C), 0.0810, 20.0));
    lib.add(cell3("AND3x1", A & B & C, 0.0972, 24.0));
    lib.add(cell3("OR3x1", A | B | C, 0.0972, 25.0));
    lib.add(cell3("AOI21x1", !((A & B) | C), 0.0810, 17.0));
    lib.add(cell3("OAI21x1", !((A | B) & C), 0.0810, 17.0));
    lib.add(cell3("AO21x1", (A & B) | C, 0.0972, 23.0));
    lib.add(cell3("OA21x1", (A | B) & C, 0.0972, 23.0));
    lib.add(cell3("MAJ3x1", (A & B) | (B & C) | (A & C), 0.1296, 27.0));
    lib.add(cell3("XOR3x1", A ^ B ^ C, 0.1782, 34.0));
    lib.add(cell3("MUX2x1", (C & A) | (!C & B), 0.1134, 25.0));

    // Four-input cells.
    let cell4 = |name: &str, f: u16, area: f64, worst: f64| {
        Cell::with_pin_delays(name, 4, f & m4, area, pins(worst, 4))
    };
    lib.add(cell4("NAND4x1", !(A & B & C & D), 0.0972, 22.0));
    lib.add(cell4("NOR4x1", !(A | B | C | D), 0.0972, 25.0));
    lib.add(cell4("AND4x1", A & B & C & D, 0.1134, 27.0));
    lib.add(cell4("OR4x1", A | B | C | D, 0.1134, 28.0));
    lib.add(cell4("AOI22x1", !((A & B) | (C & D)), 0.0972, 20.0));
    lib.add(cell4("OAI22x1", !((A | B) & (C | D)), 0.0972, 20.0));
    lib.add(cell4("AO22x1", (A & B) | (C & D), 0.1134, 26.0));
    lib.add(cell4("OA22x1", (A | B) & (C | D), 0.1134, 26.0));
    lib.add(cell4("AOI211x1", !((A & B) | C | D), 0.0972, 21.0));
    lib.add(cell4("OAI211x1", !((A | B) & C & D), 0.0972, 21.0));

    lib
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::full_mask;

    #[test]
    fn builtin_library_is_well_formed() {
        let lib = asap7_like();
        assert!(lib.len() >= 25);
        assert!(!lib.is_empty());
        assert!(lib.inverter().is_some());
        assert!(lib.buffer().is_some());
        for cell in lib.cells() {
            assert!(cell.area_um2 > 0.0, "{}", cell.name);
            assert!(cell.delay_ps > 0.0, "{}", cell.name);
            assert_eq!(cell.pin_delays_ps.len(), cell.num_inputs, "{}", cell.name);
            let worst = cell.pin_delays_ps.iter().copied().fold(0.0, f64::max);
            assert_eq!(cell.delay_ps, worst, "{}", cell.name);
            assert!(cell.pin_delays_ps.iter().all(|&d| d > 0.0), "{}", cell.name);
            assert!(cell.num_inputs >= 1 && cell.num_inputs <= 4);
            // The function must fit in 2^n bits.
            let extra = (cell.function as u64) & !full_mask(cell.num_inputs);
            assert_eq!(extra, 0, "{} has bits outside its arity", cell.name);
        }
    }

    #[test]
    fn multi_input_cells_have_asymmetric_pins() {
        let lib = asap7_like();
        let nand2 = lib.cells().find(|c| c.name == "NAND2x1").unwrap();
        assert_eq!(nand2.pin_delays_ps.len(), 2);
        assert!(nand2.pin_delays_ps[0] > nand2.pin_delays_ps[1]);
        assert_eq!(nand2.delay_ps, nand2.pin_delays_ps[0]);
        // The uniform constructor replicates the single delay.
        let c = Cell::new("T", 3, 0b1000_0000, 1.0, 5.0);
        assert_eq!(c.pin_delays_ps, vec![5.0, 5.0, 5.0]);
    }

    #[test]
    fn inverter_and_buffer_identified() {
        let lib = asap7_like();
        assert_eq!(lib.cell(lib.inverter().unwrap()).name, "INVx1");
        assert_eq!(lib.cell(lib.buffer().unwrap()).name, "BUFx2");
    }

    #[test]
    fn matching_finds_nand_class_for_and() {
        let lib = asap7_like();
        // a & b as a 4-var table.
        let and_tt = expand_to_4(0b1000, 2);
        let idx = lib.match_function(and_tt).expect("AND matches");
        // The cheapest cell in the AND/NAND/NOR/OR NPN class is a NAND2 or NOR2.
        let name = &lib.cell(idx).name;
        assert!(
            name.starts_with("NAND2") || name.starts_with("NOR2"),
            "unexpected match {name}"
        );
    }

    #[test]
    fn matching_rejects_unknown_functions() {
        let lib = asap7_like();
        // A random-looking 4-input function unlikely to be in the library.
        assert!(lib.match_function(0x1ee7).is_none());
    }

    #[test]
    fn npn_classes_are_fewer_than_cells() {
        // NAND2/NOR2/AND2/OR2 collapse into one class, so classes < cells.
        let lib = asap7_like();
        assert!(lib.num_npn_classes() < lib.len());
        assert!(lib.num_npn_classes() >= 10);
    }

    #[test]
    fn match_prefers_smaller_area_cell() {
        let mut lib = CellLibrary::new();
        let big = Cell::new("BIGAND", 2, 0b1000, 1.0, 5.0);
        let small = Cell::new("SMALLNAND", 2, 0b0111, 0.3, 5.0);
        lib.add(big);
        lib.add(small);
        let idx = lib.match_function(expand_to_4(0b1000, 2)).unwrap();
        assert_eq!(lib.cell(idx).name, "SMALLNAND");
    }
}
