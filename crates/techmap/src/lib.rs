//! Technology mapping for And-Inverter Graphs.
//!
//! This crate is the mapping substrate of the E-morphic reproduction. It
//! provides the pieces the paper's synthesis flows are built from:
//!
//! * [`cuts`] — K-feasible *priority cut* enumeration with per-cut truth
//!   tables (the `if -K 6 -C 8` machinery).
//! * [`lut`] — delay-oriented LUT mapping with area-flow recovery.
//! * [`sop`] — SOP balancing (`if -g`): delay-driven resynthesis of the
//!   network from balanced sum-of-products forms of the selected cuts.
//! * [`cell`] — standard-cell mapping by NPN Boolean matching against a
//!   built-in 7-nm-style [`library`], producing area (µm²), delay (ps) and
//!   level numbers — the QoR metrics reported throughout the paper.
//! * [`truth`] — small truth-table utilities (cofactors, NPN canonical forms,
//!   irredundant sum-of-products).
//!
//! # Quick example
//!
//! ```
//! use aig::Aig;
//! use techmap::{cell::map_to_cells, library::asap7_like};
//!
//! let mut aig = Aig::new("demo");
//! let a = aig.add_input("a");
//! let b = aig.add_input("b");
//! let c = aig.add_input("c");
//! let f = aig.maj3(a, b, c);
//! aig.add_output(f, "maj");
//! let library = asap7_like();
//! let netlist = map_to_cells(&aig, &library, &techmap::MapOptions::default());
//! let qor = netlist.qor();
//! assert!(qor.area_um2 > 0.0);
//! assert!(qor.delay_ps > 0.0);
//! ```

#![warn(missing_docs)]

pub mod cell;
pub mod cuts;
pub mod library;
pub mod lut;
mod qor;
pub mod sop;
pub mod timing;
pub mod truth;
pub mod verilog;

pub use cell::{MappedGate, Netlist};
pub use cuts::{Cut, CutSet, CutsOptions};
pub use library::{Cell, CellLibrary};
pub use lut::{Lut, LutMapping};
pub use qor::Qor;

/// Typed mapping failures, so unmappable inputs fail cleanly through the
/// flows instead of aborting the process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// A node has no cut the library can realize (a well-formed library can
    /// always realize the 2-input AND, so this indicates a broken library).
    NoMatchableCut {
        /// The unmappable node.
        node: aig::NodeId,
    },
    /// The cell library contains no inverter.
    MissingInverter,
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapError::NoMatchableCut { node } => write!(
                f,
                "node {node} has no matchable cut; the library cannot realize AND2"
            ),
            MapError::MissingInverter => write!(f, "cell library must contain an inverter"),
        }
    }
}

impl std::error::Error for MapError {}

/// Options shared by the mapping passes.
#[derive(Debug, Clone)]
pub struct MapOptions {
    /// Maximum cut size (K).
    pub cut_size: usize,
    /// Maximum number of priority cuts stored per node (C).
    pub cut_limit: usize,
    /// Number of area-recovery passes after the delay-oriented pass. Each
    /// pass is measured exactly and kept only if it strictly reduces area
    /// without exceeding the delay target, so more passes are never worse.
    pub area_passes: usize,
    /// Delay target for standard-cell mapping in ps. `None` (the default)
    /// holds the delay-optimal critical path; a looser target lets the
    /// recovery passes trade the extra slack for area. Targets below the
    /// achievable critical path are floored at it.
    pub delay_target_ps: Option<f64>,
    /// Delay target for LUT mapping in levels (the unit-delay analogue of
    /// [`MapOptions::delay_target_ps`]).
    pub delay_target_levels: Option<u32>,
}

impl Default for MapOptions {
    fn default() -> Self {
        MapOptions {
            cut_size: 4,
            cut_limit: 8,
            area_passes: 1,
            delay_target_ps: None,
            delay_target_levels: None,
        }
    }
}

impl MapOptions {
    /// The paper's LUT-mapping configuration: `if -K 6 -C 8`.
    pub fn lut6() -> Self {
        MapOptions {
            cut_size: 6,
            ..MapOptions::default()
        }
    }

    /// Sets the standard-cell delay target in ps.
    #[must_use]
    pub fn with_delay_target_ps(mut self, target: f64) -> Self {
        self.delay_target_ps = Some(target);
        self
    }

    /// Sets the number of area-recovery passes.
    #[must_use]
    pub fn with_area_passes(mut self, passes: usize) -> Self {
        self.area_passes = passes;
        self
    }
}
