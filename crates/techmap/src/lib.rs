//! Technology mapping for And-Inverter Graphs.
//!
//! This crate is the mapping substrate of the E-morphic reproduction. It
//! provides the pieces the paper's synthesis flows are built from:
//!
//! * [`cuts`] — K-feasible *priority cut* enumeration with per-cut truth
//!   tables (the `if -K 6 -C 8` machinery).
//! * [`lut`] — delay-oriented LUT mapping with area-flow recovery.
//! * [`sop`] — SOP balancing (`if -g`): delay-driven resynthesis of the
//!   network from balanced sum-of-products forms of the selected cuts.
//! * [`cell`] — standard-cell mapping by NPN Boolean matching against a
//!   built-in 7-nm-style [`library`], producing area (µm²), delay (ps) and
//!   level numbers — the QoR metrics reported throughout the paper.
//! * [`truth`] — small truth-table utilities (cofactors, NPN canonical forms,
//!   irredundant sum-of-products).
//!
//! # Quick example
//!
//! ```
//! use aig::Aig;
//! use techmap::{cell::map_to_cells, library::asap7_like};
//!
//! let mut aig = Aig::new("demo");
//! let a = aig.add_input("a");
//! let b = aig.add_input("b");
//! let c = aig.add_input("c");
//! let f = aig.maj3(a, b, c);
//! aig.add_output(f, "maj");
//! let library = asap7_like();
//! let netlist = map_to_cells(&aig, &library, &techmap::MapOptions::default());
//! let qor = netlist.qor();
//! assert!(qor.area_um2 > 0.0);
//! assert!(qor.delay_ps > 0.0);
//! ```

#![warn(missing_docs)]

pub mod cell;
pub mod cuts;
pub mod library;
pub mod lut;
mod qor;
pub mod sop;
pub mod truth;
pub mod verilog;

pub use cell::{MappedGate, Netlist};
pub use cuts::{Cut, CutSet, CutsOptions};
pub use library::{Cell, CellLibrary};
pub use lut::{Lut, LutMapping};
pub use qor::Qor;

/// Typed mapping failures, so unmappable inputs fail cleanly through the
/// flows instead of aborting the process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// A node has no cut the library can realize (a well-formed library can
    /// always realize the 2-input AND, so this indicates a broken library).
    NoMatchableCut {
        /// The unmappable node.
        node: aig::NodeId,
    },
    /// The cell library contains no inverter.
    MissingInverter,
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapError::NoMatchableCut { node } => write!(
                f,
                "node {node} has no matchable cut; the library cannot realize AND2"
            ),
            MapError::MissingInverter => write!(f, "cell library must contain an inverter"),
        }
    }
}

impl std::error::Error for MapError {}

/// Options shared by the mapping passes.
#[derive(Debug, Clone)]
pub struct MapOptions {
    /// Maximum cut size (K).
    pub cut_size: usize,
    /// Maximum number of priority cuts stored per node (C).
    pub cut_limit: usize,
    /// Number of area-recovery passes after the delay-oriented pass.
    pub area_passes: usize,
}

impl Default for MapOptions {
    fn default() -> Self {
        MapOptions {
            cut_size: 4,
            cut_limit: 8,
            area_passes: 1,
        }
    }
}

impl MapOptions {
    /// The paper's LUT-mapping configuration: `if -K 6 -C 8`.
    pub fn lut6() -> Self {
        MapOptions {
            cut_size: 6,
            cut_limit: 8,
            area_passes: 1,
        }
    }
}
