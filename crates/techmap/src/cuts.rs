//! K-feasible priority-cut enumeration with per-cut truth tables.
//!
//! This reproduces the cut computation behind ABC's `if -K <k> -C <c>`
//! mapper: every AND node stores at most `C` non-trivial cuts of at most `K`
//! leaves, merged bottom-up from its fanins, plus its trivial cut.

use crate::truth::{full_mask, VAR_MASK};
use aig::{Aig, AigNode, Lit, NodeId};
use choices::ChoiceAig;

/// A cut: a set of leaves that separates a node from the primary inputs,
/// together with the node's function over those leaves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cut {
    /// Leaf nodes, sorted by id. Variable `i` of [`Cut::truth`] is `leaves[i]`.
    pub leaves: Vec<NodeId>,
    /// Truth table of the root in terms of the leaves (low `2^n` bits).
    pub truth: u64,
}

impl Cut {
    /// Creates the trivial cut of a node (the node itself as single leaf).
    pub fn trivial(node: NodeId) -> Self {
        Cut {
            leaves: vec![node],
            truth: VAR_MASK[0] & full_mask(1),
        }
    }

    /// Number of leaves.
    pub fn size(&self) -> usize {
        self.leaves.len()
    }

    /// Returns `true` if `self`'s leaves are a subset of `other`'s leaves.
    pub fn dominates(&self, other: &Cut) -> bool {
        self.leaves.iter().all(|l| other.leaves.contains(l))
    }
}

/// Options for cut enumeration.
#[derive(Debug, Clone, Copy)]
pub struct CutsOptions {
    /// Maximum number of leaves per cut (K), at most 6.
    pub cut_size: usize,
    /// Maximum number of stored cuts per node (C), excluding the trivial cut.
    pub cut_limit: usize,
}

impl Default for CutsOptions {
    fn default() -> Self {
        CutsOptions {
            cut_size: 6,
            cut_limit: 8,
        }
    }
}

/// Cut sets for every node of an AIG.
#[derive(Debug, Clone)]
pub struct CutSet {
    cuts: Vec<Vec<Cut>>,
}

impl CutSet {
    /// Returns the cuts of a node (the last one is always the trivial cut,
    /// except for primary inputs and the constant which only have it).
    pub fn cuts(&self, node: NodeId) -> &[Cut] {
        &self.cuts[node.index()]
    }

    /// Total number of stored cuts.
    pub fn total_cuts(&self) -> usize {
        self.cuts.iter().map(|c| c.len()).sum()
    }
}

/// Expands a cut's truth table to a superset leaf ordering.
fn expand_truth(cut: &Cut, merged: &[NodeId]) -> u64 {
    let positions: Vec<usize> = cut
        .leaves
        .iter()
        .map(|l| {
            merged
                .iter()
                .position(|m| m == l)
                .unwrap_or_else(|| unreachable!("leaf present in merged cut"))
        })
        .collect();
    let bits = 1usize << merged.len();
    let mut out = 0u64;
    for m in 0..bits {
        // Build the source minterm over the cut's own leaves.
        let mut src = 0usize;
        for (i, &pos) in positions.iter().enumerate() {
            if m >> pos & 1 == 1 {
                src |= 1 << i;
            }
        }
        if cut.truth >> src & 1 == 1 {
            out |= 1 << m;
        }
    }
    out
}

/// Library-independent per-node estimates driving the 3-dimensional
/// dominance pruning: `arr` is the unit-delay depth of the node's best cut
/// (LUT levels), `area` the optimistic cut-count of its cheapest cover.
struct Estimates {
    arr: Vec<u32>,
    area: Vec<f64>,
}

impl Estimates {
    fn new(capacity: usize) -> Self {
        Estimates {
            arr: Vec::with_capacity(capacity),
            area: Vec::with_capacity(capacity),
        }
    }

    /// Unit-delay arrival estimate of a cut: one level above its deepest leaf.
    fn cut_arr(&self, cut: &Cut) -> u32 {
        1 + cut
            .leaves
            .iter()
            .map(|l| self.arr[l.index()])
            .max()
            .unwrap_or(0)
    }

    /// Optimistic area estimate of a cut: itself plus its leaves' best areas.
    fn cut_area(&self, cut: &Cut) -> f64 {
        1.0 + cut.leaves.iter().map(|l| self.area[l.index()]).sum::<f64>()
    }
}

fn merge_cuts(a: &Cut, b: &Cut, fanin0: Lit, fanin1: Lit, max_size: usize) -> Option<Cut> {
    let mut leaves: Vec<NodeId> = a.leaves.clone();
    for &l in &b.leaves {
        if !leaves.contains(&l) {
            leaves.push(l);
        }
    }
    if leaves.len() > max_size {
        return None;
    }
    leaves.sort_unstable();
    let mask = full_mask(leaves.len());
    let mut ta = expand_truth(a, &leaves);
    let mut tb = expand_truth(b, &leaves);
    if fanin0.is_complemented() {
        ta = !ta & mask;
    }
    if fanin1.is_complemented() {
        tb = !tb & mask;
    }
    Some(Cut {
        leaves,
        truth: ta & tb & mask,
    })
}

/// Computes the non-trivial cuts of an AND node by merging its fanins' cut
/// sets, with per-node dominance pruning and the priority-cut limit applied;
/// the trivial cut is appended last.
fn and_node_cuts(
    id: NodeId,
    fanin0: Lit,
    fanin1: Lit,
    all: &[Vec<Cut>],
    est: &mut Estimates,
    options: &CutsOptions,
) -> Vec<Cut> {
    let mut merged: Vec<Cut> = Vec::new();
    let cuts0 = &all[fanin0.node().index()];
    let cuts1 = &all[fanin1.node().index()];
    for c0 in cuts0 {
        for c1 in cuts1 {
            if let Some(cut) = merge_cuts(c0, c1, fanin0, fanin1, options.cut_size) {
                // Skip duplicates.
                if !merged.iter().any(|m| m.leaves == cut.leaves) {
                    merged.push(cut);
                }
            }
        }
    }
    let anchor = anchor_leaves(fanin0, fanin1);
    prune_and_cap(merged, id, Some(anchor), est, options)
}

/// The direct fanin cut's leaves (sorted): the "anchor" every AND node must
/// keep (or a subset of it) so the standard-cell mapper always sees a cut
/// with a trivially matchable function.
fn anchor_leaves(fanin0: Lit, fanin1: Lit) -> Vec<NodeId> {
    let mut anchor = vec![fanin0.node(), fanin1.node()];
    anchor.sort_unstable();
    anchor.dedup();
    anchor
}

/// Three-dimensional dominance pruning (inputs × area × arrival): a cut is
/// dropped only if another cut has a *subset* of its leaves, an arrival
/// estimate no later, and an area estimate no larger — so a wider cut that
/// reaches shallower logic survives next to a narrow-but-deep one. Survivors
/// are ranked arrival-first (then size, then area) and truncated to the
/// priority limit, except that a cut covering the `anchor` (the direct
/// fanin cut or a subset of it) is always retained so the node stays
/// library-matchable; the trivial cut is appended last. Finally the node's
/// own estimates are updated from the kept cuts.
fn prune_and_cap(
    merged: Vec<Cut>,
    id: NodeId,
    anchor: Option<Vec<NodeId>>,
    est: &mut Estimates,
    options: &CutsOptions,
) -> Vec<Cut> {
    let mut scored: Vec<(Cut, u32, f64)> = merged
        .into_iter()
        .map(|c| {
            let arr = est.cut_arr(&c);
            let area = est.cut_area(&c);
            (c, arr, area)
        })
        .collect();
    scored.sort_by(|a, b| {
        a.1.cmp(&b.1)
            .then(a.0.size().cmp(&b.0.size()))
            .then(a.2.total_cmp(&b.2))
            .then(a.0.leaves.cmp(&b.0.leaves))
    });
    let mut kept: Vec<(Cut, u32, f64)> = Vec::new();
    for (cut, arr, area) in scored {
        let dominated = kept
            .iter()
            .any(|(k, karr, karea)| k.dominates(&cut) && *karr <= arr && *karea <= area);
        if !dominated {
            kept.push((cut, arr, area));
        }
    }
    // The anchor (or a leaf-subset of it, which is what can have displaced
    // it in the dominance filter) must survive the truncation.
    let is_sub = |c: &Cut, anchor: &[NodeId]| c.leaves.iter().all(|l| anchor.contains(l));
    let rescue = anchor.and_then(|anchor| {
        let inside = kept
            .iter()
            .take(options.cut_limit)
            .any(|(c, _, _)| is_sub(c, &anchor));
        if inside {
            None
        } else {
            kept.iter()
                .position(|(c, _, _)| is_sub(c, &anchor))
                .map(|pos| kept[pos].clone())
        }
    });
    kept.truncate(options.cut_limit);
    if let Some(rescued) = rescue {
        if kept.len() == options.cut_limit {
            kept.pop();
        }
        kept.push(rescued);
    }
    let node_arr = kept.iter().map(|(_, arr, _)| *arr).min().unwrap_or(0);
    let node_area = kept
        .iter()
        .map(|(_, _, area)| *area)
        .fold(f64::INFINITY, f64::min);
    set_estimate(
        est,
        id,
        node_arr,
        if kept.is_empty() { 0.0 } else { node_area },
    );
    let mut cuts: Vec<Cut> = kept.into_iter().map(|(c, _, _)| c).collect();
    cuts.push(Cut::trivial(id));
    cuts
}

/// Records a node's estimates, growing or overwriting as needed (class
/// finalization revisits the representative after its initial pass).
fn set_estimate(est: &mut Estimates, id: NodeId, arr: u32, area: f64) {
    if id.index() >= est.arr.len() {
        est.arr.resize(id.index() + 1, 0);
        est.area.resize(id.index() + 1, 0.0);
    }
    est.arr[id.index()] = arr;
    est.area[id.index()] = area;
}

/// Enumerates priority cuts for every node of `aig`.
///
/// # Panics
/// Panics if `options.cut_size` exceeds 6 (truth tables are stored in `u64`).
pub fn enumerate_cuts(aig: &Aig, options: &CutsOptions) -> CutSet {
    assert!(options.cut_size <= 6, "cut size is limited to 6 leaves");
    assert!(options.cut_size >= 2, "cut size must be at least 2");
    let mut all: Vec<Vec<Cut>> = Vec::with_capacity(aig.num_nodes());
    let mut est = Estimates::new(aig.num_nodes());
    for id in aig.node_ids() {
        let cuts = match aig.node(id) {
            AigNode::Const => {
                set_estimate(&mut est, id, 0, 0.0);
                vec![Cut {
                    leaves: Vec::new(),
                    truth: 0,
                }]
            }
            AigNode::Input { .. } => {
                set_estimate(&mut est, id, 0, 0.0);
                vec![Cut::trivial(id)]
            }
            AigNode::And { fanin0, fanin1 } => {
                and_node_cuts(id, *fanin0, *fanin1, &all, &mut est, options)
            }
        };
        all.push(cuts);
    }
    CutSet { cuts: all }
}

/// Merges the cut sets of every member of a choice class into the class cuts
/// stored on the representative node: each member's non-trivial cuts are
/// phase-adjusted so their truth tables compute the *representative node's*
/// function, deduplicated, dominance-pruned per class, capped at the priority
/// limit, and the representative's trivial cut is appended.
fn finalize_class(
    node: NodeId,
    choices: &ChoiceAig,
    all: &mut [Vec<Cut>],
    est: &mut Estimates,
    finalized: &mut [bool],
    options: &CutsOptions,
) {
    if finalized[node.index()] {
        return;
    }
    finalized[node.index()] = true;
    let Some(class) = choices.class_of(node) else {
        return;
    };
    let repr = class.repr();
    let mut merged: Vec<Cut> = Vec::new();
    for &member in &class.members {
        // The stored member cuts compute the member node's function; the
        // class convention makes `member ^ compl` the class function and
        // `repr ^ compl` the representative node's function, so the relative
        // phase below re-expresses each cut in terms of the representative.
        let adjust = member.is_complemented() ^ repr.is_complemented();
        for cut in &all[member.node().index()] {
            if cut.leaves.len() == 1 && cut.leaves[0] == member.node() && member.node() != node {
                continue; // a non-representative trivial cut leaks the member
            }
            if cut.leaves.len() == 1 && cut.leaves[0] == node {
                continue; // the representative's trivial cut is re-appended
            }
            if merged.iter().any(|m| m.leaves == cut.leaves) {
                continue;
            }
            let mask = full_mask(cut.size());
            let truth = if adjust { !cut.truth & mask } else { cut.truth };
            merged.push(Cut {
                leaves: cut.leaves.clone(),
                truth,
            });
        }
    }
    // Re-pruning over the pooled member cuts also refreshes the
    // representative's depth/area estimates, so a class whose alternative
    // member reaches shallower logic advertises the better (depth-optimal)
    // estimate to every fanout — the choice-aware analogue of the
    // depth-optimal first pass.
    let anchor = match choices.aig().node(node) {
        AigNode::And { fanin0, fanin1 } => Some(anchor_leaves(*fanin0, *fanin1)),
        _ => None,
    };
    all[node.index()] = prune_and_cap(merged, node, anchor, est, options);
}

/// Enumerates priority cuts over a choice network: the cuts stored on a
/// choice-class representative are drawn from *all* members of the class, so
/// a choice-aware mapper sees every recorded structure of the signal. Cuts of
/// non-representative members remain their plain node cuts (they only feed
/// class merging), and all truth tables compute the function of the node the
/// cut is stored on, exactly like [`enumerate_cuts`].
///
/// Relies on the [`ChoiceAig`] ordering invariant: all members of a class
/// precede every fanout of its representative, so one bottom-up pass can
/// finalize each class before the first time it is consumed.
///
/// # Panics
/// Panics if `options.cut_size` exceeds 6 (truth tables are stored in `u64`).
pub fn enumerate_cuts_with_choices(choices: &ChoiceAig, options: &CutsOptions) -> CutSet {
    assert!(options.cut_size <= 6, "cut size is limited to 6 leaves");
    assert!(options.cut_size >= 2, "cut size must be at least 2");
    let aig = choices.aig();
    let mut all: Vec<Vec<Cut>> = Vec::with_capacity(aig.num_nodes());
    let mut est = Estimates::new(aig.num_nodes());
    let mut finalized: Vec<bool> = vec![false; aig.num_nodes()];
    for id in aig.node_ids() {
        let cuts = match aig.node(id) {
            AigNode::Const => {
                set_estimate(&mut est, id, 0, 0.0);
                vec![Cut {
                    leaves: Vec::new(),
                    truth: 0,
                }]
            }
            AigNode::Input { .. } => {
                set_estimate(&mut est, id, 0, 0.0);
                vec![Cut::trivial(id)]
            }
            AigNode::And { fanin0, fanin1 } => {
                let (fanin0, fanin1) = (*fanin0, *fanin1);
                finalize_class(
                    fanin0.node(),
                    choices,
                    &mut all,
                    &mut est,
                    &mut finalized,
                    options,
                );
                finalize_class(
                    fanin1.node(),
                    choices,
                    &mut all,
                    &mut est,
                    &mut finalized,
                    options,
                );
                and_node_cuts(id, fanin0, fanin1, &all, &mut est, options)
            }
        };
        all.push(cuts);
    }
    // Classes only consumed by the outputs (or not at all) are finalized now
    // so the mapper sees their choices too.
    for id in aig.node_ids() {
        finalize_class(id, choices, &mut all, &mut est, &mut finalized, options);
    }
    CutSet { cuts: all }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aig::{small_truth_table, Aig};

    fn sample() -> (Aig, Lit) {
        let mut aig = Aig::new("sample");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let d = aig.add_input("d");
        let ab = aig.and(a, b);
        let cd = aig.or(c, d);
        let f = aig.and(ab, cd);
        aig.add_output(f, "f");
        (aig, f)
    }

    #[test]
    fn inputs_have_only_trivial_cut() {
        let (aig, _) = sample();
        let cuts = enumerate_cuts(&aig, &CutsOptions::default());
        for &pi in aig.inputs() {
            assert_eq!(cuts.cuts(pi).len(), 1);
            assert_eq!(cuts.cuts(pi)[0].leaves, vec![pi]);
        }
    }

    #[test]
    fn root_has_full_support_cut_with_correct_truth() {
        let (aig, f) = sample();
        let cuts = enumerate_cuts(&aig, &CutsOptions::default());
        let root_cuts = cuts.cuts(f.node());
        // There must be a cut whose leaves are exactly the four inputs.
        let inputs: Vec<NodeId> = aig.inputs().to_vec();
        let full = root_cuts
            .iter()
            .find(|c| c.leaves == inputs)
            .expect("4-input cut exists");
        // Its truth table must match exhaustive simulation: (a&b)&(c|d).
        let expected = small_truth_table(&aig, 0);
        assert_eq!(full.truth, expected);
    }

    #[test]
    fn cut_size_limit_respected() {
        let mut aig = Aig::new("wide");
        let inputs = aig.add_inputs("x", 10);
        let all = aig.and_many(&inputs);
        aig.add_output(all, "f");
        let opts = CutsOptions {
            cut_size: 4,
            cut_limit: 8,
        };
        let cuts = enumerate_cuts(&aig, &opts);
        for id in aig.node_ids() {
            for cut in cuts.cuts(id) {
                assert!(cut.size() <= 4);
            }
        }
    }

    #[test]
    fn cut_limit_bounds_stored_cuts() {
        let mut aig = Aig::new("wide");
        let inputs = aig.add_inputs("x", 12);
        let all = aig.or_many(&inputs);
        aig.add_output(all, "f");
        let opts = CutsOptions {
            cut_size: 6,
            cut_limit: 3,
        };
        let cuts = enumerate_cuts(&aig, &opts);
        for id in aig.and_ids() {
            // At most cut_limit non-trivial cuts plus the trivial one.
            assert!(cuts.cuts(id).len() <= 4);
        }
    }

    #[test]
    fn complemented_fanins_reflected_in_truth() {
        let mut aig = Aig::new("c");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        // f = !a & b
        let f = aig.and(a.not(), b);
        aig.add_output(f, "f");
        let cuts = enumerate_cuts(&aig, &CutsOptions::default());
        let c = cuts
            .cuts(f.node())
            .iter()
            .find(|c| c.leaves.len() == 2)
            .unwrap();
        assert_eq!(c.truth, small_truth_table(&aig, 0));
    }

    #[test]
    fn dominated_cuts_are_removed() {
        // 3-D dominance: a stored cut may only be leaf-subset-dominated by
        // another stored cut if it wins on the arrival or area estimate.
        // Recompute the estimates independently: node depth = min over its
        // stored non-trivial cuts of (1 + max leaf depth), node area = min
        // over cuts of (1 + sum of leaf areas), PIs at 0.
        let (aig, _) = sample();
        let cuts = enumerate_cuts(&aig, &CutsOptions::default());
        let mut depth = vec![0u32; aig.num_nodes()];
        let mut area = vec![0f64; aig.num_nodes()];
        let cut_depth = |c: &Cut, depth: &[u32]| {
            1 + c.leaves.iter().map(|l| depth[l.index()]).max().unwrap_or(0)
        };
        let cut_area =
            |c: &Cut, area: &[f64]| 1.0 + c.leaves.iter().map(|l| area[l.index()]).sum::<f64>();
        for id in aig.and_ids() {
            let non_trivial: Vec<&Cut> = cuts
                .cuts(id)
                .iter()
                .filter(|c| c.leaves != vec![id])
                .collect();
            assert!(!non_trivial.is_empty());
            for (i, a) in non_trivial.iter().enumerate() {
                for (j, b) in non_trivial.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    let fully_dominated = a.dominates(b)
                        && a.leaves != b.leaves
                        && cut_depth(a, &depth) <= cut_depth(b, &depth)
                        && cut_area(a, &area) <= cut_area(b, &area);
                    assert!(
                        !fully_dominated,
                        "cut {:?} is 3-D dominated by {:?} at node {id}",
                        b.leaves, a.leaves
                    );
                }
            }
            depth[id.index()] = non_trivial
                .iter()
                .map(|c| cut_depth(c, &depth))
                .min()
                .unwrap();
            area[id.index()] = non_trivial
                .iter()
                .map(|c| cut_area(c, &area))
                .fold(f64::INFINITY, f64::min);
        }
    }

    #[test]
    fn trivial_choice_network_matches_plain_enumeration() {
        // With no choice classes, the choice-aware enumerator must agree
        // with the plain one cut for cut.
        let (aig, _) = sample();
        let options = CutsOptions::default();
        let plain = enumerate_cuts(&aig, &options);
        let choices = ChoiceAig::trivial(aig.clone());
        let with_choices = enumerate_cuts_with_choices(&choices, &options);
        for id in aig.node_ids() {
            assert_eq!(plain.cuts(id), with_choices.cuts(id), "node {id}");
        }
    }

    #[test]
    fn class_cuts_cover_all_members() {
        // f = (a & b) | c in SOP form feeds the output; the POS form rides
        // along as a choice (built first: the representative must be the
        // topologically last member). The representative's cut set must
        // contain cuts drawn from the alternative structure (the OR-of-pairs
        // shape), all computing the representative node's function.
        let mut aig = Aig::new("choice");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let a_or_c = aig.or(a, c);
        let b_or_c = aig.or(b, c);
        let f2 = aig.and(a_or_c, b_or_c);
        let ab = aig.and(a, b);
        let f1 = aig.or(ab, c); // complemented AND node
        aig.add_output(f1, "f");
        let classes = vec![choices::ChoiceClass {
            members: vec![
                Lit::new(f1.node(), false),
                // f2 == f == !f1.node, so the member literal is complemented.
                Lit::new(f2.node(), true),
            ],
        }];
        let network = ChoiceAig::new(aig.clone(), classes).unwrap();
        let cuts = enumerate_cuts_with_choices(&network, &CutsOptions::default());
        let repr_cuts = cuts.cuts(f1.node());
        // The alternative's fanin cut {a_or_c, b_or_c} must appear.
        let alt_cut = repr_cuts
            .iter()
            .find(|cut| cut.leaves == vec![a_or_c.node(), b_or_c.node()])
            .expect("cut from the alternative structure");
        // All cuts compute the representative node's function: check by
        // simulation on every input pattern.
        for pattern in 0..8usize {
            let bits: Vec<bool> = (0..3).map(|i| pattern >> i & 1 == 1).collect();
            let mut values = vec![false; aig.num_nodes()];
            for id in aig.node_ids() {
                values[id.index()] = match aig.node(id) {
                    AigNode::Const => false,
                    AigNode::Input { index } => bits[*index as usize],
                    AigNode::And { fanin0, fanin1 } => {
                        (values[fanin0.node().index()] ^ fanin0.is_complemented())
                            && (values[fanin1.node().index()] ^ fanin1.is_complemented())
                    }
                };
            }
            let mut minterm = 0usize;
            for (i, leaf) in alt_cut.leaves.iter().enumerate() {
                if values[leaf.index()] {
                    minterm |= 1 << i;
                }
            }
            assert_eq!(
                alt_cut.truth >> minterm & 1 == 1,
                values[f1.node().index()],
                "pattern {pattern}"
            );
        }
    }

    #[test]
    fn member_trivial_cuts_do_not_leak_into_class_cuts() {
        let mut aig = Aig::new("leak");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let a_or_c = aig.or(a, c);
        let b_or_c = aig.or(b, c);
        let f2 = aig.and(a_or_c, b_or_c);
        let ab = aig.and(a, b);
        let f1 = aig.or(ab, c);
        aig.add_output(f1, "f");
        let classes = vec![choices::ChoiceClass {
            members: vec![Lit::new(f1.node(), false), Lit::new(f2.node(), true)],
        }];
        let network = ChoiceAig::new(aig, classes).unwrap();
        let cuts = enumerate_cuts_with_choices(&network, &CutsOptions::default());
        for cut in cuts.cuts(f1.node()) {
            assert_ne!(
                cut.leaves,
                vec![f2.node()],
                "a member's trivial cut must not become a class cut"
            );
        }
    }

    #[test]
    fn truth_tables_of_all_cuts_are_consistent() {
        // For every cut of the output node, evaluating the cut function on
        // leaf values obtained by simulation must reproduce the node value.
        let (aig, f) = sample();
        let cuts = enumerate_cuts(&aig, &CutsOptions::default());
        for pattern in 0..16usize {
            let bits: Vec<bool> = (0..4).map(|i| pattern >> i & 1 == 1).collect();
            let node_value = aig.evaluate(&bits)[0];
            // Compute each internal node's value for leaf lookup.
            let mut values = vec![false; aig.num_nodes()];
            for id in aig.node_ids() {
                values[id.index()] = match aig.node(id) {
                    AigNode::Const => false,
                    AigNode::Input { index } => bits[*index as usize],
                    AigNode::And { fanin0, fanin1 } => {
                        (values[fanin0.node().index()] ^ fanin0.is_complemented())
                            && (values[fanin1.node().index()] ^ fanin1.is_complemented())
                    }
                };
            }
            for cut in cuts.cuts(f.node()) {
                let mut minterm = 0usize;
                for (i, leaf) in cut.leaves.iter().enumerate() {
                    if values[leaf.index()] {
                        minterm |= 1 << i;
                    }
                }
                assert_eq!(
                    cut.truth >> minterm & 1 == 1,
                    node_value,
                    "cut {:?} pattern {pattern}",
                    cut.leaves
                );
            }
        }
    }
}
