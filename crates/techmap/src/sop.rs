//! SOP balancing: delay-driven resynthesis of an AIG from the balanced
//! sum-of-products forms of mapped cuts.
//!
//! This reproduces the role of `if -g` in the paper's baseline flow
//! (Mishchenko et al., "Delay optimization using SOP balancing", ICCAD'11):
//! the network is first covered with K-input cuts by a delay-oriented LUT
//! mapping, each cut function is converted to an irredundant sum-of-products,
//! and the new AIG is rebuilt from AND/OR trees that are balanced with
//! respect to the arrival times of the cut leaves.

use crate::lut::map_to_luts;
use crate::truth::{isop, Cube};
use crate::MapOptions;
use aig::{Aig, AigNode, Lit, NodeId};

/// Rebuilds `aig` by SOP-balancing every mapped cut.
///
/// The result is functionally equivalent to the input and usually has a
/// smaller AND-level depth on arithmetic-style circuits.
pub fn sop_balance(aig: &Aig, options: &MapOptions) -> Aig {
    let mapping = map_to_luts(aig, options);

    let mut fresh = Aig::new(aig.name().to_string());
    // Map from old node id to (literal in new AIG, arrival level estimate).
    let mut map: Vec<Option<Lit>> = vec![None; aig.num_nodes()];
    let mut level: Vec<u32> = vec![0; aig.num_nodes()];
    map[NodeId::CONST.index()] = Some(Lit::FALSE);
    for (idx, &input) in aig.inputs().iter().enumerate() {
        map[input.index()] = Some(fresh.add_input(aig.input_name(idx)));
    }

    // LUTs are stored in topological order, so leaves are always ready.
    for lut in &mapping.luts {
        let leaf_lits: Vec<Lit> = lut
            .cut
            .leaves
            .iter()
            .map(|l| map[l.index()].unwrap_or_else(|| unreachable!("leaf built before root")))
            .collect();
        let leaf_levels: Vec<u32> = lut.cut.leaves.iter().map(|l| level[l.index()]).collect();
        let (lit, lev) = build_balanced_sop(
            &mut fresh,
            lut.cut.truth,
            lut.cut.leaves.len(),
            &leaf_lits,
            &leaf_levels,
        );
        map[lut.root.index()] = Some(lit);
        level[lut.root.index()] = lev;
    }

    for (idx, po) in aig.outputs().iter().enumerate() {
        let base = match aig.node(po.node()) {
            AigNode::Const => Lit::FALSE,
            _ => map[po.node().index()].unwrap_or_else(|| unreachable!("output driver built")),
        };
        fresh.add_output(base.xor(po.is_complemented()), aig.output_name(idx));
    }
    fresh.cleanup()
}

/// Builds a balanced AND/OR implementation of `truth` over the given leaves,
/// returning the output literal and its estimated level.
fn build_balanced_sop(
    aig: &mut Aig,
    truth: u64,
    nvars: usize,
    leaves: &[Lit],
    leaf_levels: &[u32],
) -> (Lit, u32) {
    use crate::truth::full_mask;
    let mask = full_mask(nvars);
    let truth = truth & mask;
    if truth == 0 {
        return (Lit::FALSE, 0);
    }
    if truth == mask {
        return (Lit::TRUE, 0);
    }
    // Implement whichever of f / !f has the cheaper cover, then fix the phase.
    let cover_pos = isop(truth, nvars);
    let cover_neg = isop(!truth & mask, nvars);
    let (cover, complemented) = if cost_of(&cover_neg) < cost_of(&cover_pos) {
        (cover_neg, true)
    } else {
        (cover_pos, false)
    };

    // Build each cube as a balanced AND tree over its literals.
    let mut products: Vec<(Lit, u32)> = Vec::with_capacity(cover.len());
    for cube in &cover {
        let mut operands: Vec<(Lit, u32)> = Vec::new();
        for v in 0..nvars {
            if cube.pos >> v & 1 == 1 {
                operands.push((leaves[v], leaf_levels[v]));
            }
            if cube.neg >> v & 1 == 1 {
                operands.push((leaves[v].not(), leaf_levels[v]));
            }
        }
        products.push(balanced_reduce(aig, operands, true));
    }
    // Sum the products with a balanced OR tree.
    let (sum, lev) = balanced_reduce(aig, products, false);
    (sum.xor(complemented), lev)
}

fn cost_of(cover: &[Cube]) -> usize {
    cover
        .iter()
        .map(|c| c.num_literals() as usize)
        .sum::<usize>()
        + cover.len()
}

/// Combines operands two at a time, always pairing the two earliest-arriving
/// ones (Huffman-style), with `and = true` for AND and `false` for OR.
fn balanced_reduce(aig: &mut Aig, mut operands: Vec<(Lit, u32)>, and: bool) -> (Lit, u32) {
    if operands.is_empty() {
        return (if and { Lit::TRUE } else { Lit::FALSE }, 0);
    }
    while operands.len() > 1 {
        // Pick the two operands with the smallest levels.
        operands.sort_by_key(|(_, lev)| std::cmp::Reverse(*lev));
        let (a, la) = operands.pop().unwrap_or_else(|| unreachable!("len > 1"));
        let (b, lb) = operands.pop().unwrap_or_else(|| unreachable!("len > 1"));
        let lit = if and { aig.and(a, b) } else { aig.or(a, b) };
        operands.push((lit, la.max(lb) + 1));
    }
    operands[0]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unbalanced_chain(width: usize) -> Aig {
        // A deliberately skewed AND chain: depth == width - 1.
        let mut aig = Aig::new("chain");
        let inputs = aig.add_inputs("x", width);
        let mut acc = inputs[0];
        for &lit in &inputs[1..] {
            acc = aig.and(acc, lit);
        }
        aig.add_output(acc, "f");
        aig
    }

    fn adder(width: usize) -> Aig {
        let mut aig = Aig::new("adder");
        let a: Vec<_> = (0..width).map(|i| aig.add_input(format!("a{i}"))).collect();
        let b: Vec<_> = (0..width).map(|i| aig.add_input(format!("b{i}"))).collect();
        let mut carry = Lit::FALSE;
        for i in 0..width {
            let axb = aig.xor(a[i], b[i]);
            let sum = aig.xor(axb, carry);
            let cout = aig.maj3(a[i], b[i], carry);
            aig.add_output(sum, format!("s{i}"));
            carry = cout;
        }
        aig.add_output(carry, "cout");
        aig
    }

    fn check_equiv_exhaustive(a: &Aig, b: &Aig) {
        assert_eq!(a.num_inputs(), b.num_inputs());
        assert!(a.num_inputs() <= 12);
        for pattern in 0..(1usize << a.num_inputs()) {
            let bits: Vec<bool> = (0..a.num_inputs()).map(|i| pattern >> i & 1 == 1).collect();
            assert_eq!(a.evaluate(&bits), b.evaluate(&bits), "pattern {pattern}");
        }
    }

    #[test]
    fn balancing_preserves_function_on_chain() {
        let aig = unbalanced_chain(9);
        let balanced = sop_balance(&aig, &MapOptions::lut6());
        check_equiv_exhaustive(&aig, &balanced);
    }

    #[test]
    fn balancing_reduces_depth_of_chain() {
        let aig = unbalanced_chain(12);
        assert_eq!(aig.depth(), 11);
        let balanced = sop_balance(&aig, &MapOptions::lut6());
        assert!(balanced.depth() <= 5, "depth {}", balanced.depth());
    }

    #[test]
    fn balancing_preserves_adder_function() {
        let aig = adder(4);
        let balanced = sop_balance(&aig, &MapOptions::lut6());
        check_equiv_exhaustive(&aig, &balanced);
    }

    #[test]
    fn balancing_does_not_blow_up_size() {
        let aig = adder(8);
        let balanced = sop_balance(&aig, &MapOptions::lut6());
        // SOP forms of 6-input cuts can add some nodes but must stay in the
        // same order of magnitude.
        assert!(balanced.num_ands() <= aig.num_ands() * 3);
    }

    #[test]
    fn repeated_balancing_is_stable() {
        let aig = adder(4);
        let once = sop_balance(&aig, &MapOptions::lut6());
        let twice = sop_balance(&once, &MapOptions::lut6());
        check_equiv_exhaustive(&aig, &twice);
        assert!(twice.depth() <= once.depth() + 1);
    }

    #[test]
    fn constant_and_trivial_outputs_survive() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let f = aig.and(a, b);
        aig.add_output(Lit::TRUE, "one");
        aig.add_output(a.not(), "na");
        aig.add_output(f, "f");
        let balanced = sop_balance(&aig, &MapOptions::default());
        check_equiv_exhaustive(&aig, &balanced);
    }
}
