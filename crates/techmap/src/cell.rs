//! Standard-cell technology mapping by NPN Boolean matching on priority cuts.
//!
//! Every AND node is covered by a library cell implementing the function of
//! one of its (at most 4-input) cuts; covering is delay-oriented with an
//! area-flow recovery pass, mirroring the structure of the paper's
//! `(st; dch; map)` step. Complemented edges internal to a cut are absorbed
//! into the matched cell function; only complemented primary outputs require
//! explicit inverters.

use crate::cuts::{enumerate_cuts, enumerate_cuts_with_choices, CutSet, CutsOptions};
use crate::library::CellLibrary;
use crate::qor::Qor;
use crate::truth::{expand_to_4, full_mask};
use crate::{MapError, MapOptions};
use aig::{Aig, AigNode, Lit, NodeId};
use choices::ChoiceAig;
use std::collections::HashMap;

/// One instantiated cell in the mapped netlist.
#[derive(Debug, Clone)]
pub struct MappedGate {
    /// Index of the cell in the library.
    pub cell: usize,
    /// Human-readable cell name.
    pub cell_name: String,
    /// The AIG node this gate implements (its positive phase).
    pub root: NodeId,
    /// The cut leaves feeding this gate (variable order of `truth`).
    pub leaves: Vec<NodeId>,
    /// The implemented function over the leaves.
    pub truth: u64,
    /// Cell area in µm².
    pub area_um2: f64,
    /// Cell delay in ps.
    pub delay_ps: f64,
}

/// How each primary output is driven in the mapped netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputDriver {
    /// Driven by the positive phase of a mapped node or primary input.
    Direct(NodeId),
    /// Driven through an inverter from a mapped node or primary input.
    Inverted(NodeId),
    /// Tied to a constant value.
    Constant(bool),
}

/// A mapped standard-cell netlist with its quality metrics.
#[derive(Debug, Clone)]
pub struct Netlist {
    /// Design name.
    pub name: String,
    /// The mapped gates in topological order.
    pub gates: Vec<MappedGate>,
    /// Driver of each primary output.
    pub outputs: Vec<OutputDriver>,
    /// Number of inverter cells added for complemented outputs.
    pub num_inverters: usize,
    area_um2: f64,
    delay_ps: f64,
    levels: u32,
}

impl Netlist {
    /// Total cell area in µm².
    pub fn area_um2(&self) -> f64 {
        self.area_um2
    }

    /// Critical-path delay in ps.
    pub fn delay_ps(&self) -> f64 {
        self.delay_ps
    }

    /// Number of logic levels on the critical path.
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Number of gates (including output inverters).
    pub fn num_gates(&self) -> usize {
        self.gates.len() + self.num_inverters
    }

    /// Returns the quality-of-results record of this netlist.
    pub fn qor(&self) -> Qor {
        Qor {
            name: self.name.clone(),
            area_um2: self.area_um2,
            delay_ps: self.delay_ps,
            levels: self.levels,
            gates: self.num_gates(),
        }
    }

    /// Evaluates the netlist on one input pattern of the original AIG
    /// (used by verification tests).
    pub fn evaluate(&self, aig: &Aig, inputs: &[bool]) -> Vec<bool> {
        let mut values = vec![false; aig.num_nodes()];
        for (i, &pi) in aig.inputs().iter().enumerate() {
            values[pi.index()] = inputs[i];
        }
        for gate in &self.gates {
            let mut minterm = 0usize;
            for (i, leaf) in gate.leaves.iter().enumerate() {
                if values[leaf.index()] {
                    minterm |= 1 << i;
                }
            }
            values[gate.root.index()] = gate.truth >> minterm & 1 == 1;
        }
        self.outputs
            .iter()
            .map(|driver| match driver {
                OutputDriver::Direct(node) => values[node.index()],
                OutputDriver::Inverted(node) => !values[node.index()],
                OutputDriver::Constant(value) => *value,
            })
            .collect()
    }

    /// Reconstructs a technology-independent AIG computing the netlist's
    /// function (each gate re-synthesized from its truth table by Shannon
    /// decomposition over the cut leaves), so a mapped result can be
    /// CEC-verified against the original circuit with the SAT machinery.
    ///
    /// `source` is the AIG the netlist was mapped from; it supplies the
    /// node-id space of the gate roots/leaves and the input/output names.
    pub fn to_aig(&self, source: &Aig) -> Aig {
        let mut fresh = Aig::new(self.name.clone());
        let mut lits: Vec<Option<Lit>> = vec![None; source.num_nodes()];
        lits[NodeId::CONST.index()] = Some(Lit::FALSE);
        for (idx, &pi) in source.inputs().iter().enumerate() {
            lits[pi.index()] = Some(fresh.add_input(source.input_name(idx)));
        }
        for gate in &self.gates {
            let leaves: Vec<Lit> = gate
                .leaves
                .iter()
                .map(|l| lits[l.index()].expect("gate leaves precede the gate"))
                .collect();
            lits[gate.root.index()] = Some(synthesize_truth(&mut fresh, gate.truth, &leaves));
        }
        for (idx, driver) in self.outputs.iter().enumerate() {
            let lit = match driver {
                OutputDriver::Direct(node) => lits[node.index()].expect("mapped output driver"),
                OutputDriver::Inverted(node) => {
                    lits[node.index()].expect("mapped output driver").not()
                }
                OutputDriver::Constant(true) => Lit::TRUE,
                OutputDriver::Constant(false) => Lit::FALSE,
            };
            fresh.add_output(lit, source.output_name(idx));
        }
        fresh.cleanup()
    }
}

/// Builds an AIG cone computing `truth` over the given leaf literals by
/// Shannon decomposition (structural hashing shares common cofactors).
fn synthesize_truth(aig: &mut Aig, truth: u64, leaves: &[Lit]) -> Lit {
    let mask = full_mask(leaves.len());
    let t = truth & mask;
    if t == 0 {
        return Lit::FALSE;
    }
    if t == mask {
        return Lit::TRUE;
    }
    let k = leaves.len() - 1;
    let half = 1usize << k;
    let lo = full_mask(k);
    let f0 = synthesize_truth(aig, t & lo, &leaves[..k]);
    let f1 = synthesize_truth(aig, (t >> half) & lo, &leaves[..k]);
    aig.mux(leaves[k], f1, f0)
}

struct Choice {
    cut_index: usize,
    cell: usize,
    arrival: f64,
    area_flow: f64,
}

/// Maps an AIG onto the given standard-cell library.
///
/// # Panics
/// Panics if the library lacks an inverter or cannot realize a 2-input AND
/// (every well-formed library can); [`try_map_to_cells`] reports the same
/// conditions as a typed [`MapError`] instead.
pub fn map_to_cells(aig: &Aig, library: &CellLibrary, options: &MapOptions) -> Netlist {
    try_map_to_cells(aig, library, options).unwrap_or_else(|e| panic!("{e}"))
}

/// Maps an AIG onto the given standard-cell library, reporting unmappable
/// inputs as a typed error.
///
/// # Errors
/// Returns a [`MapError`] if the library lacks an inverter or some node has
/// no realizable cut.
pub fn try_map_to_cells(
    aig: &Aig,
    library: &CellLibrary,
    options: &MapOptions,
) -> Result<Netlist, MapError> {
    let cuts = enumerate_cuts(aig, &cell_cut_options(options));
    map_with_cuts(aig, &cuts, library, options)
}

/// Maps a choice network onto the given standard-cell library: cuts are
/// enumerated across *all* members of every choice class (see
/// [`enumerate_cuts_with_choices`]), so each covered signal picks the
/// cheapest realization over all recorded structures, not just the extracted
/// representative.
///
/// # Errors
/// Returns a [`MapError`] if the library lacks an inverter or some node has
/// no realizable cut.
pub fn try_map_to_cells_with_choices(
    choices: &ChoiceAig,
    library: &CellLibrary,
    options: &MapOptions,
) -> Result<Netlist, MapError> {
    let cuts = enumerate_cuts_with_choices(choices, &cell_cut_options(options));
    map_with_cuts(choices.aig(), &cuts, library, options)
}

/// Standard-cell matching is 4-input limited (NPN tables are `u16`).
fn cell_cut_options(options: &MapOptions) -> CutsOptions {
    CutsOptions {
        cut_size: options.cut_size.min(4),
        cut_limit: options.cut_limit,
    }
}

/// The shared covering core: delay-oriented pass, area-flow recovery and
/// cover derivation over an already enumerated cut set.
fn map_with_cuts(
    aig: &Aig,
    cuts: &CutSet,
    library: &CellLibrary,
    options: &MapOptions,
) -> Result<Netlist, MapError> {
    let fanouts = aig.fanout_counts();
    let inverter = library.inverter().ok_or(MapError::MissingInverter)?;
    let inv_cell = library.cell(inverter);

    // Memoized Boolean matching: cut truth (4-var expanded) -> best cell.
    let mut match_cache: HashMap<u16, Option<usize>> = HashMap::new();
    let mut match_fn = |truth: u64, nvars: usize| -> Option<usize> {
        let tt4 = expand_to_4(truth, nvars);
        *match_cache
            .entry(tt4)
            .or_insert_with(|| library.match_function(tt4))
    };

    let mut arrival = vec![0f64; aig.num_nodes()];
    let mut area_flow = vec![0f64; aig.num_nodes()];
    let mut choice: Vec<Option<Choice>> = (0..aig.num_nodes()).map(|_| None).collect();

    // Delay-oriented covering pass.
    for id in aig.and_ids() {
        let mut best: Option<Choice> = None;
        for (ci, cut) in cuts.cuts(id).iter().enumerate() {
            if cut.leaves == [id] || cut.size() > 4 {
                continue;
            }
            let Some(cell_idx) = match_fn(cut.truth, cut.size()) else {
                continue;
            };
            let cell = library.cell(cell_idx);
            let arr = cell.delay_ps
                + cut
                    .leaves
                    .iter()
                    .map(|l| arrival[l.index()])
                    .fold(0.0, f64::max);
            let af = cell.area_um2
                + cut
                    .leaves
                    .iter()
                    .map(|l| area_flow[l.index()] / f64::max(1.0, fanouts[l.index()] as f64))
                    .sum::<f64>();
            let better = match &best {
                None => true,
                Some(b) => (arr, af) < (b.arrival, b.area_flow),
            };
            if better {
                best = Some(Choice {
                    cut_index: ci,
                    cell: cell_idx,
                    arrival: arr,
                    area_flow: af,
                });
            }
        }
        let best = best.ok_or(MapError::NoMatchableCut { node: id })?;
        arrival[id.index()] = best.arrival;
        area_flow[id.index()] = best.area_flow;
        choice[id.index()] = Some(best);
    }

    let worst_output_arrival = aig
        .outputs()
        .iter()
        .map(|l| arrival[l.node().index()])
        .fold(0.0, f64::max);

    // Area-flow recovery pass(es).
    for _ in 0..options.area_passes {
        let required = compute_required(aig, cuts, &choice, worst_output_arrival, library);
        for id in aig.and_ids() {
            let mut best: Option<Choice> = None;
            for (ci, cut) in cuts.cuts(id).iter().enumerate() {
                if cut.leaves == [id] || cut.size() > 4 {
                    continue;
                }
                let Some(cell_idx) = match_fn(cut.truth, cut.size()) else {
                    continue;
                };
                let cell = library.cell(cell_idx);
                let arr = cell.delay_ps
                    + cut
                        .leaves
                        .iter()
                        .map(|l| arrival[l.index()])
                        .fold(0.0, f64::max);
                if arr > required[id.index()] + 1e-9 {
                    continue;
                }
                let af = cell.area_um2
                    + cut
                        .leaves
                        .iter()
                        .map(|l| area_flow[l.index()] / f64::max(1.0, fanouts[l.index()] as f64))
                        .sum::<f64>();
                let better = match &best {
                    None => true,
                    Some(b) => (af, arr) < (b.area_flow, b.arrival),
                };
                if better {
                    best = Some(Choice {
                        cut_index: ci,
                        cell: cell_idx,
                        arrival: arr,
                        area_flow: af,
                    });
                }
            }
            if let Some(best) = best {
                arrival[id.index()] = best.arrival;
                area_flow[id.index()] = best.area_flow;
                choice[id.index()] = Some(best);
            }
        }
    }

    // Derive the cover from the outputs.
    let mut needed = vec![false; aig.num_nodes()];
    let mut stack: Vec<NodeId> = aig
        .outputs()
        .iter()
        .map(|l| l.node())
        .filter(|n| aig.node(*n).is_and())
        .collect();
    while let Some(id) = stack.pop() {
        if needed[id.index()] {
            continue;
        }
        needed[id.index()] = true;
        let ch = choice[id.index()].as_ref().expect("mapped node");
        for leaf in &cuts.cuts(id)[ch.cut_index].leaves {
            if aig.node(*leaf).is_and() {
                stack.push(*leaf);
            }
        }
    }

    let mut gates = Vec::new();
    let mut area = 0.0;
    let mut level = vec![0u32; aig.num_nodes()];
    for id in aig.and_ids() {
        if !needed[id.index()] {
            continue;
        }
        let ch = choice[id.index()].as_ref().expect("mapped node");
        let cut = &cuts.cuts(id)[ch.cut_index];
        let cell = library.cell(ch.cell);
        area += cell.area_um2;
        level[id.index()] = 1 + cut
            .leaves
            .iter()
            .map(|l| level[l.index()])
            .max()
            .unwrap_or(0);
        gates.push(MappedGate {
            cell: ch.cell,
            cell_name: cell.name.clone(),
            root: id,
            leaves: cut.leaves.clone(),
            truth: cut.truth,
            area_um2: cell.area_um2,
            delay_ps: cell.delay_ps,
        });
    }

    // Output drivers: add inverters where the PO uses the complemented phase.
    let mut outputs = Vec::with_capacity(aig.num_outputs());
    let mut num_inverters = 0usize;
    let mut delay: f64 = 0.0;
    let mut levels: u32 = 0;
    for &po in aig.outputs() {
        let node = po.node();
        let driver = match aig.node(node) {
            AigNode::Const => OutputDriver::Constant(po.is_complemented()),
            _ => {
                let mut arr = arrival[node.index()];
                let mut lev = level[node.index()];
                let driver = if po.is_complemented() {
                    num_inverters += 1;
                    area += inv_cell.area_um2;
                    arr += inv_cell.delay_ps;
                    lev += 1;
                    OutputDriver::Inverted(node)
                } else {
                    OutputDriver::Direct(node)
                };
                delay = delay.max(arr);
                levels = levels.max(lev);
                driver
            }
        };
        outputs.push(driver);
    }

    Ok(Netlist {
        name: aig.name().to_string(),
        gates,
        outputs,
        num_inverters,
        area_um2: area,
        delay_ps: delay,
        levels,
    })
}

fn compute_required(
    aig: &Aig,
    cuts: &crate::cuts::CutSet,
    choice: &[Option<Choice>],
    worst_arrival: f64,
    library: &CellLibrary,
) -> Vec<f64> {
    let mut required = vec![f64::INFINITY; aig.num_nodes()];
    for po in aig.outputs() {
        let idx = po.node().index();
        required[idx] = required[idx].min(worst_arrival);
    }
    for id in aig.and_ids().collect::<Vec<_>>().into_iter().rev() {
        if !required[id.index()].is_finite() {
            continue;
        }
        if let Some(ch) = &choice[id.index()] {
            let cell = library.cell(ch.cell);
            let req = required[id.index()] - cell.delay_ps;
            for leaf in &cuts.cuts(id)[ch.cut_index].leaves {
                if required[leaf.index()] > req {
                    required[leaf.index()] = req;
                }
            }
        }
    }
    for r in &mut required {
        if !r.is_finite() {
            *r = worst_arrival;
        }
    }
    required
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::asap7_like;

    fn adder(width: usize) -> Aig {
        let mut aig = Aig::new("adder");
        let a: Vec<_> = (0..width).map(|i| aig.add_input(format!("a{i}"))).collect();
        let b: Vec<_> = (0..width).map(|i| aig.add_input(format!("b{i}"))).collect();
        let mut carry = aig::Lit::FALSE;
        for i in 0..width {
            let axb = aig.xor(a[i], b[i]);
            let sum = aig.xor(axb, carry);
            let cout = aig.maj3(a[i], b[i], carry);
            aig.add_output(sum, format!("s{i}"));
            carry = cout;
        }
        aig.add_output(carry, "cout");
        aig
    }

    fn check_netlist_equiv(aig: &Aig, netlist: &Netlist) {
        assert!(aig.num_inputs() <= 12);
        for pattern in 0..(1usize << aig.num_inputs()) {
            let bits: Vec<bool> = (0..aig.num_inputs())
                .map(|i| pattern >> i & 1 == 1)
                .collect();
            assert_eq!(
                netlist.evaluate(aig, &bits),
                aig.evaluate(&bits),
                "pattern {pattern}"
            );
        }
    }

    #[test]
    fn mapping_preserves_function() {
        let aig = adder(3);
        let lib = asap7_like();
        let netlist = map_to_cells(&aig, &lib, &MapOptions::default());
        check_netlist_equiv(&aig, &netlist);
    }

    #[test]
    fn qor_metrics_are_sane() {
        let aig = adder(8);
        let lib = asap7_like();
        let netlist = map_to_cells(&aig, &lib, &MapOptions::default());
        let qor = netlist.qor();
        assert!(qor.area_um2 > 0.5, "area {}", qor.area_um2);
        assert!(qor.delay_ps > 50.0, "delay {}", qor.delay_ps);
        assert!(qor.levels >= 4);
        assert!(qor.gates >= 20);
        // The mapped gate count must not exceed the AND count (cells cover
        // multiple AND nodes), plus output inverters.
        assert!(qor.gates <= aig.num_ands() + aig.num_outputs());
    }

    #[test]
    fn complemented_outputs_get_inverters() {
        let mut aig = Aig::new("inv");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let f = aig.and(a, b);
        aig.add_output(f.not(), "nf");
        aig.add_output(f, "f");
        let lib = asap7_like();
        let netlist = map_to_cells(&aig, &lib, &MapOptions::default());
        // Either the NAND is mapped directly and the positive output needs an
        // inverter, or the AND is mapped and the complemented output needs
        // one; both are valid, but there is exactly one inverter.
        assert_eq!(netlist.num_inverters, 1);
        check_netlist_equiv(&aig, &netlist);
    }

    #[test]
    fn constant_outputs_are_tied() {
        let mut aig = Aig::new("consts");
        let _a = aig.add_input("a");
        aig.add_output(aig::Lit::TRUE, "one");
        aig.add_output(aig::Lit::FALSE, "zero");
        let lib = asap7_like();
        let netlist = map_to_cells(&aig, &lib, &MapOptions::default());
        assert_eq!(netlist.outputs[0], OutputDriver::Constant(true));
        assert_eq!(netlist.outputs[1], OutputDriver::Constant(false));
        assert_eq!(netlist.num_gates(), 0);
        assert_eq!(netlist.qor().delay_ps, 0.0);
    }

    #[test]
    fn area_recovery_does_not_hurt_delay() {
        let aig = adder(6);
        let lib = asap7_like();
        let with_recovery = map_to_cells(&aig, &lib, &MapOptions::default());
        let without_recovery = map_to_cells(
            &aig,
            &lib,
            &MapOptions {
                area_passes: 0,
                ..MapOptions::default()
            },
        );
        assert!(with_recovery.delay_ps() <= without_recovery.delay_ps() + 1e-6);
        assert!(with_recovery.area_um2() <= without_recovery.area_um2() + 1e-6);
    }

    #[test]
    fn xor_maps_to_few_gates() {
        let mut aig = Aig::new("xor");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let x = aig.xor(a, b);
        aig.add_output(x, "x");
        let lib = asap7_like();
        let netlist = map_to_cells(&aig, &lib, &MapOptions::default());
        // A single XOR2 cell should cover the whole cone.
        assert_eq!(netlist.gates.len(), 1);
        assert!(
            netlist.gates[0].cell_name.starts_with("XOR")
                || netlist.gates[0].cell_name.starts_with("XNOR")
        );
        check_netlist_equiv(&aig, &netlist);
    }

    #[test]
    fn try_map_reports_missing_inverter() {
        let aig = adder(2);
        let empty = CellLibrary::new();
        let err = try_map_to_cells(&aig, &empty, &MapOptions::default()).unwrap_err();
        assert_eq!(err, crate::MapError::MissingInverter);
    }

    #[test]
    fn netlist_to_aig_is_equivalent() {
        let aig = adder(4);
        let lib = asap7_like();
        let netlist = map_to_cells(&aig, &lib, &MapOptions::default());
        let back = netlist.to_aig(&aig);
        assert_eq!(back.num_inputs(), aig.num_inputs());
        assert_eq!(back.num_outputs(), aig.num_outputs());
        for pattern in 0..(1usize << aig.num_inputs()) {
            let bits: Vec<bool> = (0..aig.num_inputs())
                .map(|i| pattern >> i & 1 == 1)
                .collect();
            assert_eq!(
                back.evaluate(&bits),
                aig.evaluate(&bits),
                "pattern {pattern}"
            );
        }
    }

    /// A network carrying the POS shape of `(a & b) | c` as a choice for the
    /// SOP representative (the alternative cone is built first: the
    /// representative must be the topologically last member of its class).
    fn choice_network() -> ChoiceAig {
        let mut aig = Aig::new("choice");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let a_or_c = aig.or(a, c);
        let b_or_c = aig.or(b, c);
        let f2 = aig.and(a_or_c, b_or_c);
        let ab = aig.and(a, b);
        let f1 = aig.or(ab, c);
        aig.add_output(f1, "f");
        let classes = vec![choices::ChoiceClass {
            members: vec![
                aig::Lit::new(f1.node(), false),
                aig::Lit::new(f2.node(), true),
            ],
        }];
        ChoiceAig::new(aig, classes).unwrap()
    }

    #[test]
    fn choice_mapping_preserves_function() {
        let network = choice_network();
        let lib = asap7_like();
        let netlist =
            try_map_to_cells_with_choices(&network, &lib, &MapOptions::default()).unwrap();
        check_netlist_equiv(network.aig(), &netlist);
        let back = netlist.to_aig(network.aig());
        for pattern in 0..8usize {
            let bits: Vec<bool> = (0..3).map(|i| pattern >> i & 1 == 1).collect();
            let expected = (bits[0] && bits[1]) || bits[2];
            assert_eq!(back.evaluate(&bits), vec![expected], "pattern {pattern}");
        }
    }

    #[test]
    fn choice_mapping_not_worse_than_trivial_choices() {
        // Mapping with a class can only add cuts over the representative
        // cone, so the mapped area must not regress against the same network
        // with the class removed.
        let network = choice_network();
        let lib = asap7_like();
        let with_choices =
            try_map_to_cells_with_choices(&network, &lib, &MapOptions::default()).unwrap();
        let trivial = ChoiceAig::trivial(network.aig().clone());
        let without =
            try_map_to_cells_with_choices(&trivial, &lib, &MapOptions::default()).unwrap();
        assert!(with_choices.area_um2() <= without.area_um2() + 1e-9);
    }

    #[test]
    fn deeper_logic_has_higher_delay() {
        let lib = asap7_like();
        let small = adder(2);
        let large = adder(10);
        let q_small = map_to_cells(&small, &lib, &MapOptions::default()).qor();
        let q_large = map_to_cells(&large, &lib, &MapOptions::default()).qor();
        assert!(q_large.delay_ps > q_small.delay_ps);
        assert!(q_large.area_um2 > q_small.area_um2);
    }
}
