//! Standard-cell technology mapping by NPN Boolean matching on priority cuts.
//!
//! Every AND node is covered by a library cell implementing the function of
//! one of its (at most 4-input) cuts; covering is delay-oriented with an
//! area-flow recovery pass, mirroring the structure of the paper's
//! `(st; dch; map)` step. Complemented edges internal to a cut are absorbed
//! into the matched cell function; only complemented primary outputs require
//! explicit inverters.

use crate::cuts::{enumerate_cuts, enumerate_cuts_with_choices, CutSet, CutsOptions};
use crate::library::CellLibrary;
use crate::qor::Qor;
use crate::timing::{assign_pin_delays, gate_arrival};
use crate::truth::{expand_to_4, full_mask};
use crate::{MapError, MapOptions};
use aig::{Aig, AigNode, Lit, NodeId};
use choices::ChoiceAig;
use std::collections::HashMap;

/// Slop for floating-point timing comparisons.
const EPS: f64 = 1e-9;

/// Gathers a cut's leaf arrivals into a caller-provided stack buffer (cuts
/// are capped at 6 leaves), so the mapper's innermost loops stay
/// allocation-free end to end, matching the fixed-buffer design of
/// [`crate::timing`].
fn gather_leaf_arrivals<'a>(
    cut: &crate::cuts::Cut,
    arrival: &[f64],
    buf: &'a mut [f64; 8],
) -> &'a [f64] {
    for (slot, leaf) in buf.iter_mut().zip(&cut.leaves) {
        *slot = arrival[leaf.index()];
    }
    &buf[..cut.leaves.len()]
}

/// One instantiated cell in the mapped netlist.
#[derive(Debug, Clone)]
pub struct MappedGate {
    /// Index of the cell in the library.
    pub cell: usize,
    /// Human-readable cell name.
    pub cell_name: String,
    /// The AIG node this gate implements (its positive phase).
    pub root: NodeId,
    /// The cut leaves feeding this gate (variable order of `truth`).
    pub leaves: Vec<NodeId>,
    /// The implemented function over the leaves.
    pub truth: u64,
    /// Cell area in µm².
    pub area_um2: f64,
    /// Worst-case cell delay in ps (max of [`MappedGate::pin_delays_ps`]).
    pub delay_ps: f64,
    /// Pin-to-output delays of the instantiated cell in ps, applied to the
    /// leaves through the conservative sorted pairing of [`crate::timing`].
    pub pin_delays_ps: Vec<f64>,
}

/// How each primary output is driven in the mapped netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputDriver {
    /// Driven by the positive phase of a mapped node or primary input.
    Direct(NodeId),
    /// Driven through an inverter from a mapped node or primary input.
    Inverted(NodeId),
    /// Tied to a constant value.
    Constant(bool),
}

/// A mapped standard-cell netlist with its quality metrics and full static
/// timing annotation (per-gate arrival and required times under the
/// load-independent pin-to-pin model of [`crate::timing`]).
#[derive(Debug, Clone)]
pub struct Netlist {
    /// Design name.
    pub name: String,
    /// The mapped gates in topological order.
    pub gates: Vec<MappedGate>,
    /// Driver of each primary output.
    pub outputs: Vec<OutputDriver>,
    /// Number of inverter cells added for complemented outputs.
    pub num_inverters: usize,
    area_um2: f64,
    delay_ps: f64,
    levels: u32,
    /// Arrival time (ps) of each gate's output, aligned with `gates`.
    arrival_ps: Vec<f64>,
    /// Required time (ps) of each gate's output, aligned with `gates`.
    required_ps: Vec<f64>,
    /// The effective required time at every primary output: the delay
    /// target, floored at the delay-optimal critical path.
    target_ps: f64,
    /// Gate index by root node.
    gate_index: HashMap<NodeId, usize>,
}

impl Netlist {
    /// Total cell area in µm².
    pub fn area_um2(&self) -> f64 {
        self.area_um2
    }

    /// Critical-path delay in ps.
    pub fn delay_ps(&self) -> f64 {
        self.delay_ps
    }

    /// Number of logic levels on the critical path.
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Number of gates (including output inverters).
    pub fn num_gates(&self) -> usize {
        self.gates.len() + self.num_inverters
    }

    /// The effective required time at the primary outputs in ps: the
    /// requested delay target, floored at the delay-optimal critical path
    /// (a target the cut set cannot meet is reported as unmet slack, never
    /// as a fictitious required time below what is achievable).
    pub fn delay_target_ps(&self) -> f64 {
        self.target_ps
    }

    /// Arrival time of a mapped gate root in ps (`None` for primary inputs
    /// — which arrive at 0 — and nodes off the cover).
    pub fn arrival_ps_of(&self, node: NodeId) -> Option<f64> {
        self.gate_index.get(&node).map(|&g| self.arrival_ps[g])
    }

    /// Required time of a mapped gate root in ps (`None` off the cover).
    pub fn required_ps_of(&self, node: NodeId) -> Option<f64> {
        self.gate_index.get(&node).map(|&g| self.required_ps[g])
    }

    /// Slack of a mapped gate root in ps: required minus arrival. Negative
    /// slack appears only when the delay target is below the achievable
    /// critical path.
    pub fn slack_ps_of(&self, node: NodeId) -> Option<f64> {
        let g = *self.gate_index.get(&node)?;
        Some(self.required_ps[g] - self.arrival_ps[g])
    }

    /// Worst slack over the primary outputs in ps: effective target minus
    /// critical-path delay (non-negative by construction).
    pub fn worst_slack_ps(&self) -> f64 {
        self.target_ps - self.delay_ps
    }

    /// Per-gate arrival times (aligned with [`Netlist::gates`]).
    pub fn gate_arrivals_ps(&self) -> &[f64] {
        &self.arrival_ps
    }

    /// Per-gate required times (aligned with [`Netlist::gates`]).
    pub fn gate_requireds_ps(&self) -> &[f64] {
        &self.required_ps
    }

    /// Corruption hook for the `audit` crate's mutation tests (skews stored
    /// arrival annotations); never call from production code.
    #[doc(hidden)]
    pub fn tamper_arrival_ps_mut(&mut self) -> &mut Vec<f64> {
        &mut self.arrival_ps
    }

    /// Corruption hook for the `audit` crate's mutation tests (skews stored
    /// required-time annotations); never call from production code.
    #[doc(hidden)]
    pub fn tamper_required_ps_mut(&mut self) -> &mut Vec<f64> {
        &mut self.required_ps
    }

    /// Returns the quality-of-results record of this netlist.
    pub fn qor(&self) -> Qor {
        Qor {
            name: self.name.clone(),
            area_um2: self.area_um2,
            delay_ps: self.delay_ps,
            levels: self.levels,
            gates: self.num_gates(),
        }
    }

    /// Evaluates the netlist on one input pattern of the original AIG
    /// (used by verification tests).
    pub fn evaluate(&self, aig: &Aig, inputs: &[bool]) -> Vec<bool> {
        let mut values = vec![false; aig.num_nodes()];
        for (i, &pi) in aig.inputs().iter().enumerate() {
            values[pi.index()] = inputs[i];
        }
        for gate in &self.gates {
            let mut minterm = 0usize;
            for (i, leaf) in gate.leaves.iter().enumerate() {
                if values[leaf.index()] {
                    minterm |= 1 << i;
                }
            }
            values[gate.root.index()] = gate.truth >> minterm & 1 == 1;
        }
        self.outputs
            .iter()
            .map(|driver| match driver {
                OutputDriver::Direct(node) => values[node.index()],
                OutputDriver::Inverted(node) => !values[node.index()],
                OutputDriver::Constant(value) => *value,
            })
            .collect()
    }

    /// Reconstructs a technology-independent AIG computing the netlist's
    /// function (each gate re-synthesized from its truth table by Shannon
    /// decomposition over the cut leaves), so a mapped result can be
    /// CEC-verified against the original circuit with the SAT machinery.
    ///
    /// `source` is the AIG the netlist was mapped from; it supplies the
    /// node-id space of the gate roots/leaves and the input/output names.
    pub fn to_aig(&self, source: &Aig) -> Aig {
        let mut fresh = Aig::new(self.name.clone());
        let mut lits: Vec<Option<Lit>> = vec![None; source.num_nodes()];
        lits[NodeId::CONST.index()] = Some(Lit::FALSE);
        for (idx, &pi) in source.inputs().iter().enumerate() {
            lits[pi.index()] = Some(fresh.add_input(source.input_name(idx)));
        }
        for gate in &self.gates {
            let leaves: Vec<Lit> = gate
                .leaves
                .iter()
                .map(|l| {
                    lits[l.index()].unwrap_or_else(|| unreachable!("gate leaves precede the gate"))
                })
                .collect();
            lits[gate.root.index()] = Some(synthesize_truth(&mut fresh, gate.truth, &leaves));
        }
        for (idx, driver) in self.outputs.iter().enumerate() {
            let lit = match driver {
                OutputDriver::Direct(node) => {
                    lits[node.index()].unwrap_or_else(|| unreachable!("mapped output driver"))
                }
                OutputDriver::Inverted(node) => lits[node.index()]
                    .unwrap_or_else(|| unreachable!("mapped output driver"))
                    .not(),
                OutputDriver::Constant(true) => Lit::TRUE,
                OutputDriver::Constant(false) => Lit::FALSE,
            };
            fresh.add_output(lit, source.output_name(idx));
        }
        fresh.cleanup()
    }
}

/// Builds an AIG cone computing `truth` over the given leaf literals by
/// Shannon decomposition (structural hashing shares common cofactors).
fn synthesize_truth(aig: &mut Aig, truth: u64, leaves: &[Lit]) -> Lit {
    let mask = full_mask(leaves.len());
    let t = truth & mask;
    if t == 0 {
        return Lit::FALSE;
    }
    if t == mask {
        return Lit::TRUE;
    }
    let k = leaves.len() - 1;
    let half = 1usize << k;
    let lo = full_mask(k);
    let f0 = synthesize_truth(aig, t & lo, &leaves[..k]);
    let f1 = synthesize_truth(aig, (t >> half) & lo, &leaves[..k]);
    aig.mux(leaves[k], f1, f0)
}

#[derive(Clone)]
struct Choice {
    cut_index: usize,
    cell: usize,
    arrival: f64,
    area_flow: f64,
}

/// One cover derived from a per-node cut selection: which nodes are used,
/// their freshly recomputed arrival times, and the exact (not flow-estimated)
/// area/delay of the induced netlist.
struct Cover {
    needed: Vec<bool>,
    /// Per-node arrival in ps, recomputed bottom-up over the cover only —
    /// this is the timing the final netlist reports, independent of any
    /// stale DP state.
    arrival: Vec<f64>,
    area_um2: f64,
    delay_ps: f64,
}

/// Derives the cover induced by `choice` and measures it exactly.
fn derive_cover(
    aig: &Aig,
    cuts: &CutSet,
    choice: &[Option<Choice>],
    library: &CellLibrary,
    inv_delay_ps: f64,
    inv_area_um2: f64,
) -> Cover {
    let mut needed = vec![false; aig.num_nodes()];
    let mut stack: Vec<NodeId> = aig
        .outputs()
        .iter()
        .map(|l| l.node())
        .filter(|n| aig.node(*n).is_and())
        .collect();
    while let Some(id) = stack.pop() {
        if needed[id.index()] {
            continue;
        }
        needed[id.index()] = true;
        let ch = choice[id.index()]
            .as_ref()
            .unwrap_or_else(|| unreachable!("mapped node"));
        for leaf in &cuts.cuts(id)[ch.cut_index].leaves {
            if aig.node(*leaf).is_and() {
                stack.push(*leaf);
            }
        }
    }
    let mut arrival = vec![0f64; aig.num_nodes()];
    let mut area = 0.0;
    for id in aig.and_ids() {
        if !needed[id.index()] {
            continue;
        }
        let ch = choice[id.index()]
            .as_ref()
            .unwrap_or_else(|| unreachable!("mapped node"));
        let cut = &cuts.cuts(id)[ch.cut_index];
        let cell = library.cell(ch.cell);
        let mut buf = [0.0f64; 8];
        let leaf_arrivals = gather_leaf_arrivals(cut, &arrival, &mut buf);
        arrival[id.index()] = gate_arrival(leaf_arrivals, &cell.pin_delays_ps);
        area += cell.area_um2;
    }
    let mut delay = 0f64;
    for &po in aig.outputs() {
        if matches!(aig.node(po.node()), AigNode::Const) {
            continue;
        }
        let mut arr = arrival[po.node().index()];
        if po.is_complemented() {
            arr += inv_delay_ps;
            area += inv_area_um2;
        }
        delay = delay.max(arr);
    }
    Cover {
        needed,
        arrival,
        area_um2: area,
        delay_ps: delay,
    }
}

/// Maps an AIG onto the given standard-cell library.
///
/// # Panics
/// Panics if the library lacks an inverter or cannot realize a 2-input AND
/// (every well-formed library can); [`try_map_to_cells`] reports the same
/// conditions as a typed [`MapError`] instead.
// The panic is the documented contract; `try_map_to_cells` is the
// non-panicking form.
#[allow(clippy::panic)]
pub fn map_to_cells(aig: &Aig, library: &CellLibrary, options: &MapOptions) -> Netlist {
    try_map_to_cells(aig, library, options).unwrap_or_else(|e| panic!("{e}"))
}

/// Maps an AIG onto the given standard-cell library, reporting unmappable
/// inputs as a typed error.
///
/// # Errors
/// Returns a [`MapError`] if the library lacks an inverter or some node has
/// no realizable cut.
pub fn try_map_to_cells(
    aig: &Aig,
    library: &CellLibrary,
    options: &MapOptions,
) -> Result<Netlist, MapError> {
    let cuts = enumerate_cuts(aig, &cell_cut_options(options));
    map_with_cuts(aig, &cuts, library, options)
}

/// Maps a choice network onto the given standard-cell library: cuts are
/// enumerated across *all* members of every choice class (see
/// [`enumerate_cuts_with_choices`]), so each covered signal picks the
/// cheapest realization over all recorded structures, not just the extracted
/// representative.
///
/// # Errors
/// Returns a [`MapError`] if the library lacks an inverter or some node has
/// no realizable cut.
pub fn try_map_to_cells_with_choices(
    choices: &ChoiceAig,
    library: &CellLibrary,
    options: &MapOptions,
) -> Result<Netlist, MapError> {
    let cuts = enumerate_cuts_with_choices(choices, &cell_cut_options(options));
    map_with_cuts(choices.aig(), &cuts, library, options)
}

/// Standard-cell matching is 4-input limited (NPN tables are `u16`).
fn cell_cut_options(options: &MapOptions) -> CutsOptions {
    CutsOptions {
        cut_size: options.cut_size.min(4),
        cut_limit: options.cut_limit,
    }
}

/// The shared covering core: the classic *map → required → recover* loop.
///
/// 1. A delay-optimal first pass selects, for every node, the cut/cell pair
///    with the earliest arrival under the pin-to-pin model (ties broken by
///    area flow). Over a choice network the cut sets already pool every
///    e-class member's structures, so this pass is depth-optimal across the
///    whole recorded e-space.
/// 2. Required times are propagated backward from the primary outputs at the
///    effective target (the requested delay target, floored at the achieved
///    critical path) through the selected cuts.
/// 3. Each area-recovery pass re-selects cheaper cuts on nodes whose slack
///    allows it — over a choice network this can swap in a *different
///    e-class member's* cut — then measures the induced cover exactly and
///    keeps it only if it strictly reduces area without busting the target,
///    so more passes are monotonically never worse.
fn map_with_cuts(
    aig: &Aig,
    cuts: &CutSet,
    library: &CellLibrary,
    options: &MapOptions,
) -> Result<Netlist, MapError> {
    let fanouts = aig.fanout_counts();
    let inverter = library.inverter().ok_or(MapError::MissingInverter)?;
    let inv_cell = library.cell(inverter);
    let (inv_delay, inv_area) = (inv_cell.delay_ps, inv_cell.area_um2);

    // Memoized Boolean matching: cut truth (4-var expanded) -> best cell.
    let mut match_cache: HashMap<u16, Option<usize>> = HashMap::new();
    let mut match_fn = |truth: u64, nvars: usize| -> Option<usize> {
        let tt4 = expand_to_4(truth, nvars);
        *match_cache
            .entry(tt4)
            .or_insert_with(|| library.match_function(tt4))
    };

    let mut arrival = vec![0f64; aig.num_nodes()];
    let mut area_flow = vec![0f64; aig.num_nodes()];
    let mut choice: Vec<Option<Choice>> = (0..aig.num_nodes()).map(|_| None).collect();

    // Delay-optimal covering pass.
    for id in aig.and_ids() {
        let mut best: Option<Choice> = None;
        for (ci, cut) in cuts.cuts(id).iter().enumerate() {
            if cut.leaves == [id] || cut.size() > 4 {
                continue;
            }
            let Some(cell_idx) = match_fn(cut.truth, cut.size()) else {
                continue;
            };
            let cell = library.cell(cell_idx);
            let mut buf = [0.0f64; 8];
            let leaf_arrivals = gather_leaf_arrivals(cut, &arrival, &mut buf);
            let arr = gate_arrival(leaf_arrivals, &cell.pin_delays_ps);
            let af = cell.area_um2
                + cut
                    .leaves
                    .iter()
                    .map(|l| area_flow[l.index()] / f64::max(1.0, fanouts[l.index()] as f64))
                    .sum::<f64>();
            let better = match &best {
                None => true,
                Some(b) => (arr, af) < (b.arrival, b.area_flow),
            };
            if better {
                best = Some(Choice {
                    cut_index: ci,
                    cell: cell_idx,
                    arrival: arr,
                    area_flow: af,
                });
            }
        }
        let best = best.ok_or(MapError::NoMatchableCut { node: id })?;
        arrival[id.index()] = best.arrival;
        area_flow[id.index()] = best.area_flow;
        choice[id.index()] = Some(best);
    }

    // The delay-optimal cover is the initial best snapshot; its critical
    // path floors the effective delay target (a tighter request cannot be
    // met by this cut set and is *reported* as such, never faked).
    let mut best_cover = derive_cover(aig, cuts, &choice, library, inv_delay, inv_area);
    let target = match options.delay_target_ps {
        Some(t) => t.max(best_cover.delay_ps),
        None => best_cover.delay_ps,
    };
    let mut best_state = (choice.clone(), arrival.clone(), area_flow.clone());

    // Area-recovery passes: re-select off-critical nodes for area, measure
    // the induced cover exactly, and keep it only if it is strictly smaller
    // without exceeding the target. A failed pass is rolled back, so the
    // sequence of accepted covers is monotone in both metrics.
    for _ in 0..options.area_passes {
        let required = compute_required(aig, cuts, &choice, &arrival, target, library, inv_delay);
        for id in aig.and_ids() {
            let mut best: Option<Choice> = None;
            for (ci, cut) in cuts.cuts(id).iter().enumerate() {
                if cut.leaves == [id] || cut.size() > 4 {
                    continue;
                }
                let Some(cell_idx) = match_fn(cut.truth, cut.size()) else {
                    continue;
                };
                let cell = library.cell(cell_idx);
                let mut buf = [0.0f64; 8];
                let leaf_arrivals = gather_leaf_arrivals(cut, &arrival, &mut buf);
                let arr = gate_arrival(leaf_arrivals, &cell.pin_delays_ps);
                if arr > required[id.index()] + EPS {
                    continue;
                }
                let af = cell.area_um2
                    + cut
                        .leaves
                        .iter()
                        .map(|l| area_flow[l.index()] / f64::max(1.0, fanouts[l.index()] as f64))
                        .sum::<f64>();
                let better = match &best {
                    None => true,
                    Some(b) => (af, arr) < (b.area_flow, b.arrival),
                };
                if better {
                    best = Some(Choice {
                        cut_index: ci,
                        cell: cell_idx,
                        arrival: arr,
                        area_flow: af,
                    });
                }
            }
            if let Some(best) = best {
                arrival[id.index()] = best.arrival;
                area_flow[id.index()] = best.area_flow;
                choice[id.index()] = Some(best);
            }
        }
        let cover = derive_cover(aig, cuts, &choice, library, inv_delay, inv_area);
        if cover.delay_ps <= target + EPS && cover.area_um2 < best_cover.area_um2 - EPS {
            best_cover = cover;
            best_state = (choice.clone(), arrival.clone(), area_flow.clone());
        } else {
            // Roll back so the next pass restarts from the accepted state:
            // running k+1 passes can never end worse than running k.
            (choice, arrival, area_flow) = best_state.clone();
        }
    }
    let (choice, _, _) = best_state;
    let cover = best_cover;

    // Emit the netlist from the best cover, with per-gate timing annotation.
    let mut gates = Vec::new();
    let mut gate_index: HashMap<NodeId, usize> = HashMap::new();
    let mut arrival_ps = Vec::new();
    let mut level = vec![0u32; aig.num_nodes()];
    for id in aig.and_ids() {
        if !cover.needed[id.index()] {
            continue;
        }
        let ch = choice[id.index()]
            .as_ref()
            .unwrap_or_else(|| unreachable!("mapped node"));
        let cut = &cuts.cuts(id)[ch.cut_index];
        let cell = library.cell(ch.cell);
        level[id.index()] = 1 + cut
            .leaves
            .iter()
            .map(|l| level[l.index()])
            .max()
            .unwrap_or(0);
        gate_index.insert(id, gates.len());
        arrival_ps.push(cover.arrival[id.index()]);
        gates.push(MappedGate {
            cell: ch.cell,
            cell_name: cell.name.clone(),
            root: id,
            leaves: cut.leaves.clone(),
            truth: cut.truth,
            area_um2: cell.area_um2,
            delay_ps: cell.delay_ps,
            pin_delays_ps: cell.pin_delays_ps.clone(),
        });
    }

    // Output drivers: add inverters where the PO uses the complemented phase.
    let mut outputs = Vec::with_capacity(aig.num_outputs());
    let mut num_inverters = 0usize;
    let mut levels: u32 = 0;
    for &po in aig.outputs() {
        let node = po.node();
        let driver = match aig.node(node) {
            AigNode::Const => OutputDriver::Constant(po.is_complemented()),
            _ => {
                let lev = level[node.index()];
                if po.is_complemented() {
                    num_inverters += 1;
                    levels = levels.max(lev + 1);
                    OutputDriver::Inverted(node)
                } else {
                    levels = levels.max(lev);
                    OutputDriver::Direct(node)
                }
            }
        };
        outputs.push(driver);
    }

    // Required times over the emitted netlist: the same backward propagation
    // the recovery loop uses, evaluated on the final cover's fresh arrivals,
    // so meeting the target at the outputs implies non-negative slack on
    // every gate.
    let required = compute_required(
        aig,
        cuts,
        &choice,
        &cover.arrival,
        target,
        library,
        inv_delay,
    );
    let required_ps: Vec<f64> = gates.iter().map(|g| required[g.root.index()]).collect();

    Ok(Netlist {
        name: aig.name().to_string(),
        gates,
        outputs,
        num_inverters,
        area_um2: cover.area_um2,
        delay_ps: cover.delay_ps,
        levels,
        arrival_ps,
        required_ps,
        target_ps: target,
        gate_index,
    })
}

/// Backward required-time propagation over the *current selection*: every
/// primary output must settle by `target` (minus an output inverter where
/// the PO is complemented), and each selected cut distributes its root's
/// requirement to its leaves through the same conservative pin pairing the
/// forward arrivals use (`arrival` supplies the per-node arrival times the
/// pairing ranks by — the DP state during recovery, the final cover's fresh
/// times when annotating the emitted netlist). Nodes outside the current
/// cover stay permissive at `target`; the recovery loop re-measures the
/// real cover after every pass, so an over-permissive requirement can waste
/// a pass but never corrupt the result.
fn compute_required(
    aig: &Aig,
    cuts: &crate::cuts::CutSet,
    choice: &[Option<Choice>],
    arrival: &[f64],
    target: f64,
    library: &CellLibrary,
    inv_delay_ps: f64,
) -> Vec<f64> {
    let mut required = vec![f64::INFINITY; aig.num_nodes()];
    for po in aig.outputs() {
        let idx = po.node().index();
        let req = if po.is_complemented() {
            target - inv_delay_ps
        } else {
            target
        };
        required[idx] = required[idx].min(req);
    }
    for id in aig.and_ids().collect::<Vec<_>>().into_iter().rev() {
        if !required[id.index()].is_finite() {
            continue;
        }
        if let Some(ch) = &choice[id.index()] {
            let cell = library.cell(ch.cell);
            let cut = &cuts.cuts(id)[ch.cut_index];
            let mut buf = [0.0f64; 8];
            let leaf_arrivals = gather_leaf_arrivals(cut, arrival, &mut buf);
            let assigned = assign_pin_delays(leaf_arrivals, &cell.pin_delays_ps);
            for (leaf, d) in cut.leaves.iter().zip(&assigned) {
                let req = required[id.index()] - d;
                if required[leaf.index()] > req {
                    required[leaf.index()] = req;
                }
            }
        }
    }
    for r in &mut required {
        if !r.is_finite() {
            *r = target;
        }
    }
    required
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::asap7_like;

    fn adder(width: usize) -> Aig {
        let mut aig = Aig::new("adder");
        let a: Vec<_> = (0..width).map(|i| aig.add_input(format!("a{i}"))).collect();
        let b: Vec<_> = (0..width).map(|i| aig.add_input(format!("b{i}"))).collect();
        let mut carry = aig::Lit::FALSE;
        for i in 0..width {
            let axb = aig.xor(a[i], b[i]);
            let sum = aig.xor(axb, carry);
            let cout = aig.maj3(a[i], b[i], carry);
            aig.add_output(sum, format!("s{i}"));
            carry = cout;
        }
        aig.add_output(carry, "cout");
        aig
    }

    fn check_netlist_equiv(aig: &Aig, netlist: &Netlist) {
        assert!(aig.num_inputs() <= 12);
        for pattern in 0..(1usize << aig.num_inputs()) {
            let bits: Vec<bool> = (0..aig.num_inputs())
                .map(|i| pattern >> i & 1 == 1)
                .collect();
            assert_eq!(
                netlist.evaluate(aig, &bits),
                aig.evaluate(&bits),
                "pattern {pattern}"
            );
        }
    }

    #[test]
    fn mapping_preserves_function() {
        let aig = adder(3);
        let lib = asap7_like();
        let netlist = map_to_cells(&aig, &lib, &MapOptions::default());
        check_netlist_equiv(&aig, &netlist);
    }

    #[test]
    fn qor_metrics_are_sane() {
        let aig = adder(8);
        let lib = asap7_like();
        let netlist = map_to_cells(&aig, &lib, &MapOptions::default());
        let qor = netlist.qor();
        assert!(qor.area_um2 > 0.5, "area {}", qor.area_um2);
        assert!(qor.delay_ps > 50.0, "delay {}", qor.delay_ps);
        assert!(qor.levels >= 4);
        assert!(qor.gates >= 20);
        // The mapped gate count must not exceed the AND count (cells cover
        // multiple AND nodes), plus output inverters.
        assert!(qor.gates <= aig.num_ands() + aig.num_outputs());
    }

    #[test]
    fn complemented_outputs_get_inverters() {
        let mut aig = Aig::new("inv");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let f = aig.and(a, b);
        aig.add_output(f.not(), "nf");
        aig.add_output(f, "f");
        let lib = asap7_like();
        let netlist = map_to_cells(&aig, &lib, &MapOptions::default());
        // Either the NAND is mapped directly and the positive output needs an
        // inverter, or the AND is mapped and the complemented output needs
        // one; both are valid, but there is exactly one inverter.
        assert_eq!(netlist.num_inverters, 1);
        check_netlist_equiv(&aig, &netlist);
    }

    #[test]
    fn constant_outputs_are_tied() {
        let mut aig = Aig::new("consts");
        let _a = aig.add_input("a");
        aig.add_output(aig::Lit::TRUE, "one");
        aig.add_output(aig::Lit::FALSE, "zero");
        let lib = asap7_like();
        let netlist = map_to_cells(&aig, &lib, &MapOptions::default());
        assert_eq!(netlist.outputs[0], OutputDriver::Constant(true));
        assert_eq!(netlist.outputs[1], OutputDriver::Constant(false));
        assert_eq!(netlist.num_gates(), 0);
        assert_eq!(netlist.qor().delay_ps, 0.0);
    }

    #[test]
    fn area_recovery_does_not_hurt_delay() {
        let aig = adder(6);
        let lib = asap7_like();
        let with_recovery = map_to_cells(&aig, &lib, &MapOptions::default());
        let without_recovery = map_to_cells(
            &aig,
            &lib,
            &MapOptions {
                area_passes: 0,
                ..MapOptions::default()
            },
        );
        assert!(with_recovery.delay_ps() <= without_recovery.delay_ps() + 1e-6);
        assert!(with_recovery.area_um2() <= without_recovery.area_um2() + 1e-6);
    }

    #[test]
    fn xor_maps_to_few_gates() {
        let mut aig = Aig::new("xor");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let x = aig.xor(a, b);
        aig.add_output(x, "x");
        let lib = asap7_like();
        let netlist = map_to_cells(&aig, &lib, &MapOptions::default());
        // A single XOR2 cell should cover the whole cone.
        assert_eq!(netlist.gates.len(), 1);
        assert!(
            netlist.gates[0].cell_name.starts_with("XOR")
                || netlist.gates[0].cell_name.starts_with("XNOR")
        );
        check_netlist_equiv(&aig, &netlist);
    }

    #[test]
    fn timing_annotation_is_self_consistent() {
        let aig = adder(5);
        let lib = asap7_like();
        let netlist = map_to_cells(&aig, &lib, &MapOptions::default());
        // Recompute every gate arrival independently in topological order.
        let mut arr: std::collections::HashMap<aig::NodeId, f64> = HashMap::new();
        for (g, gate) in netlist.gates.iter().enumerate() {
            let leaf_arrivals: Vec<f64> = gate
                .leaves
                .iter()
                .map(|l| arr.get(l).copied().unwrap_or(0.0))
                .collect();
            let recomputed = crate::timing::gate_arrival(&leaf_arrivals, &gate.pin_delays_ps);
            assert_eq!(recomputed, netlist.gate_arrivals_ps()[g]);
            assert_eq!(netlist.arrival_ps_of(gate.root), Some(recomputed));
            arr.insert(gate.root, recomputed);
        }
        // With no delay target, the effective target is the critical path,
        // output slack is exactly zero and every gate has non-negative slack.
        assert_eq!(netlist.delay_target_ps(), netlist.delay_ps());
        assert_eq!(netlist.worst_slack_ps(), 0.0);
        for gate in &netlist.gates {
            let slack = netlist.slack_ps_of(gate.root).unwrap();
            assert!(slack >= -1e-9, "gate {:?} slack {slack}", gate.root);
            assert!(
                netlist.required_ps_of(gate.root).unwrap()
                    >= netlist.arrival_ps_of(gate.root).unwrap() - 1e-9
            );
        }
        // Primary inputs are not gate roots.
        assert_eq!(netlist.arrival_ps_of(aig.inputs()[0]), None);
    }

    #[test]
    fn delay_target_trades_slack_for_area_but_never_busts() {
        let aig = adder(6);
        let lib = asap7_like();
        let optimal = map_to_cells(
            &aig,
            &lib,
            &MapOptions {
                area_passes: 0,
                ..MapOptions::default()
            },
        );
        let target = optimal.delay_ps() * 1.5;
        let relaxed = map_to_cells(
            &aig,
            &lib,
            &MapOptions::default()
                .with_delay_target_ps(target)
                .with_area_passes(3),
        );
        assert!((relaxed.delay_target_ps() - target).abs() < 1e-9);
        assert!(relaxed.delay_ps() <= target + 1e-9);
        assert!(relaxed.area_um2() <= optimal.area_um2() + 1e-9);
        assert!(relaxed.worst_slack_ps() >= -1e-9);
        check_netlist_equiv(&aig, &relaxed);
        // A target below the achievable critical path is floored at it.
        let floored = map_to_cells(&aig, &lib, &MapOptions::default().with_delay_target_ps(1.0));
        assert!(floored.delay_target_ps() >= optimal.delay_ps() - 1e-9);
        assert!(floored.delay_ps() >= optimal.delay_ps() - 1e-9);
    }

    #[test]
    fn try_map_reports_missing_inverter() {
        let aig = adder(2);
        let empty = CellLibrary::new();
        let err = try_map_to_cells(&aig, &empty, &MapOptions::default()).unwrap_err();
        assert_eq!(err, crate::MapError::MissingInverter);
    }

    #[test]
    fn netlist_to_aig_is_equivalent() {
        let aig = adder(4);
        let lib = asap7_like();
        let netlist = map_to_cells(&aig, &lib, &MapOptions::default());
        let back = netlist.to_aig(&aig);
        assert_eq!(back.num_inputs(), aig.num_inputs());
        assert_eq!(back.num_outputs(), aig.num_outputs());
        for pattern in 0..(1usize << aig.num_inputs()) {
            let bits: Vec<bool> = (0..aig.num_inputs())
                .map(|i| pattern >> i & 1 == 1)
                .collect();
            assert_eq!(
                back.evaluate(&bits),
                aig.evaluate(&bits),
                "pattern {pattern}"
            );
        }
    }

    /// A network carrying the POS shape of `(a & b) | c` as a choice for the
    /// SOP representative (the alternative cone is built first: the
    /// representative must be the topologically last member of its class).
    fn choice_network() -> ChoiceAig {
        let mut aig = Aig::new("choice");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let a_or_c = aig.or(a, c);
        let b_or_c = aig.or(b, c);
        let f2 = aig.and(a_or_c, b_or_c);
        let ab = aig.and(a, b);
        let f1 = aig.or(ab, c);
        aig.add_output(f1, "f");
        let classes = vec![choices::ChoiceClass {
            members: vec![
                aig::Lit::new(f1.node(), false),
                aig::Lit::new(f2.node(), true),
            ],
        }];
        ChoiceAig::new(aig, classes).unwrap()
    }

    #[test]
    fn choice_mapping_preserves_function() {
        let network = choice_network();
        let lib = asap7_like();
        let netlist =
            try_map_to_cells_with_choices(&network, &lib, &MapOptions::default()).unwrap();
        check_netlist_equiv(network.aig(), &netlist);
        let back = netlist.to_aig(network.aig());
        for pattern in 0..8usize {
            let bits: Vec<bool> = (0..3).map(|i| pattern >> i & 1 == 1).collect();
            let expected = (bits[0] && bits[1]) || bits[2];
            assert_eq!(back.evaluate(&bits), vec![expected], "pattern {pattern}");
        }
    }

    #[test]
    fn choice_mapping_not_worse_than_trivial_choices() {
        // Mapping with a class can only add cuts over the representative
        // cone, so the mapped area must not regress against the same network
        // with the class removed.
        let network = choice_network();
        let lib = asap7_like();
        let with_choices =
            try_map_to_cells_with_choices(&network, &lib, &MapOptions::default()).unwrap();
        let trivial = ChoiceAig::trivial(network.aig().clone());
        let without =
            try_map_to_cells_with_choices(&trivial, &lib, &MapOptions::default()).unwrap();
        assert!(with_choices.area_um2() <= without.area_um2() + 1e-9);
    }

    #[test]
    fn deeper_logic_has_higher_delay() {
        let lib = asap7_like();
        let small = adder(2);
        let large = adder(10);
        let q_small = map_to_cells(&small, &lib, &MapOptions::default()).qor();
        let q_large = map_to_cells(&large, &lib, &MapOptions::default()).qor();
        assert!(q_large.delay_ps > q_small.delay_ps);
        assert!(q_large.area_um2 > q_small.area_um2);
    }
}
