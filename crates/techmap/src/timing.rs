//! The load-independent timing model shared by the mapper, the mapped
//! netlist's arrival/required/slack queries and the differential timing
//! tests.
//!
//! Boolean matching is NPN-based and does not track which cut leaf lands on
//! which cell pin, so pin-to-pin delays are applied through a *conservative
//! sorted pairing*: leaf arrivals sorted descending are paired with pin
//! delays sorted descending, which is the worst case over every legal
//! pin assignment (the rearrangement inequality). The same pairing drives
//! the backward required-time propagation, so a gate whose output meets its
//! required time always yields non-negative slack on every leaf.
//!
//! LUT mapping uses the degenerate form of the same model: every pin of a
//! LUT has unit delay (one level), making arrival times plain LUT depths.

/// Cuts carry at most 6 leaves and cells at most 4 pins, so all the pairing
/// scratch space fits in fixed stack buffers — these helpers run in the
/// mapper's innermost loop (per node × cut × cell, repeated every recovery
/// pass) and must not allocate.
const MAX_PINS: usize = 8;

/// Sorts the first `n` slots of a fixed buffer descending (insertion sort:
/// n ≤ 8, and comparisons only — float `max`/compare never round, so the
/// result is bitwise independent of the sort algorithm).
fn sort_desc(buf: &mut [f64; MAX_PINS], n: usize) {
    for i in 1..n {
        let mut j = i;
        while j > 0 && buf[j] > buf[j - 1] {
            buf.swap(j, j - 1);
            j -= 1;
        }
    }
}

/// Copies the pin delays into a descending stack buffer, padded with the
/// slowest pin up to `n` entries (a cut can have more leaves than the
/// matched cell has pins when its function does not depend on every leaf;
/// the extras conservatively get the slowest pin).
fn sorted_pins(pin_delays_ps: &[f64], n: usize) -> [f64; MAX_PINS] {
    let mut pins = [0.0f64; MAX_PINS];
    let m = pin_delays_ps.len().min(MAX_PINS);
    pins[..m].copy_from_slice(&pin_delays_ps[..m]);
    sort_desc(&mut pins, m);
    let slowest = pins[0];
    for slot in pins.iter_mut().take(n).skip(m.max(1)) {
        *slot = slowest;
    }
    pins
}

/// Assigns one pin delay to each cut leaf: leaves are ranked by arrival time
/// (descending, ties broken by position so the pairing is deterministic) and
/// the `rank`-th slowest leaf receives the `rank`-th slowest pin delay.
/// Returns the assigned delay per leaf *in the original leaf order*.
///
/// A cut can have more leaves than the matched cell has pins (the cut
/// function may not depend on every leaf); the extra leaves conservatively
/// receive the slowest pin delay. A cell with more pins than leaves
/// contributes only its slowest `leaf_arrivals.len()` pins.
///
/// # Panics
/// Panics if there are more than 8 leaves (cut sizes are capped at 6).
pub fn assign_pin_delays(leaf_arrivals: &[f64], pin_delays_ps: &[f64]) -> Vec<f64> {
    let n = leaf_arrivals.len();
    assert!(n <= MAX_PINS, "cuts are limited to {MAX_PINS} leaves");
    let mut order = [0usize; MAX_PINS];
    for (i, slot) in order.iter_mut().take(n).enumerate() {
        *slot = i;
    }
    order[..n].sort_by(|&a, &b| {
        leaf_arrivals[b]
            .partial_cmp(&leaf_arrivals[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let pins = sorted_pins(pin_delays_ps, n);
    let mut assigned = vec![0.0; n];
    for (rank, &leaf) in order[..n].iter().enumerate() {
        assigned[leaf] = pins[rank];
    }
    assigned
}

/// Arrival time of a gate output under the conservative sorted pairing:
/// `max_i(arrival[i] + assigned_delay[i])`, or 0 for a gate with no leaves.
///
/// The pairing never needs the permutation itself: the max over the sorted
/// pairing equals pairing the descending arrivals with the descending pins
/// rank by rank, computed here allocation-free.
///
/// # Panics
/// Panics if there are more than 8 leaves (cut sizes are capped at 6).
pub fn gate_arrival(leaf_arrivals: &[f64], pin_delays_ps: &[f64]) -> f64 {
    let n = leaf_arrivals.len();
    assert!(n <= MAX_PINS, "cuts are limited to {MAX_PINS} leaves");
    let mut arrivals = [0.0f64; MAX_PINS];
    arrivals[..n].copy_from_slice(leaf_arrivals);
    sort_desc(&mut arrivals, n);
    let pins = sorted_pins(pin_delays_ps, n);
    let mut worst = 0.0f64;
    for rank in 0..n {
        let sum = arrivals[rank] + pins[rank];
        if sum > worst {
            worst = sum;
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairing_is_worst_case_over_permutations() {
        let arrivals = [10.0, 30.0, 20.0];
        let pins = [5.0, 1.0, 3.0];
        let model = gate_arrival(&arrivals, &pins);
        // Exhaustive max over all assignments of pins to leaves.
        let perms: [[usize; 3]; 6] = [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        let brute = perms
            .iter()
            .map(|p| {
                arrivals
                    .iter()
                    .zip(p)
                    .map(|(a, &i)| a + pins[i])
                    .fold(0.0, f64::max)
            })
            .fold(0.0, f64::max);
        assert_eq!(model, brute);
        // Slowest leaf (30) gets the slowest pin (5).
        assert_eq!(model, 35.0);
    }

    #[test]
    fn assignment_preserves_leaf_order() {
        let assigned = assign_pin_delays(&[1.0, 9.0], &[4.0, 2.0]);
        // Leaf 1 arrives last, so it gets the slow pin.
        assert_eq!(assigned, vec![2.0, 4.0]);
    }

    #[test]
    fn extra_leaves_get_the_slowest_pin() {
        let assigned = assign_pin_delays(&[1.0, 2.0, 3.0], &[7.0]);
        assert_eq!(assigned, vec![7.0, 7.0, 7.0]);
        // More pins than leaves: only the slowest pins are used.
        let arr = gate_arrival(&[1.0], &[2.0, 9.0]);
        assert_eq!(arr, 10.0);
    }

    #[test]
    fn ties_break_by_position_deterministically() {
        let a = assign_pin_delays(&[5.0, 5.0], &[3.0, 1.0]);
        assert_eq!(a, vec![3.0, 1.0]);
    }

    #[test]
    fn empty_cut_has_zero_arrival() {
        assert_eq!(gate_arrival(&[], &[]), 0.0);
    }
}
