//! The [`CostEvaluator`] trait and its two implementations.

use crate::features::CircuitFeatures;
use crate::regression::RidgeModel;
use aig::Aig;
use techmap::library::CellLibrary;
use techmap::{cell::map_to_cells, MapOptions, Qor};

/// Evaluates the quality of an extracted circuit.
///
/// The simulated-annealing extractor in the `emorphic` crate is generic over
/// this trait; the paper's "quality-prioritized" and "runtime-prioritized"
/// modes correspond to [`TechMapCost`] and [`LearnedCost`] respectively.
pub trait CostEvaluator: Send + Sync {
    /// Returns a scalar cost (lower is better) for the candidate circuit.
    fn evaluate(&self, aig: &Aig) -> f64;

    /// Human-readable name of the evaluator (used in reports).
    fn name(&self) -> &str;
}

/// Quality-prioritized cost: full standard-cell mapping, cost = delay (ps)
/// plus a small area tie-breaker.
#[derive(Debug, Clone)]
pub struct TechMapCost {
    /// The cell library used for mapping.
    pub library: CellLibrary,
    /// Mapper options.
    pub options: MapOptions,
    /// Weight of area (µm²) added to the delay cost as a tie-breaker.
    pub area_weight: f64,
}

impl TechMapCost {
    /// Creates a delay-dominated cost with a mild area tie-breaker.
    pub fn new(library: CellLibrary) -> Self {
        TechMapCost {
            library,
            options: MapOptions::default(),
            area_weight: 0.01,
        }
    }

    /// Maps the circuit and returns the full QoR record (used for reporting).
    pub fn qor(&self, aig: &Aig) -> Qor {
        map_to_cells(aig, &self.library, &self.options).qor()
    }
}

impl CostEvaluator for TechMapCost {
    fn evaluate(&self, aig: &Aig) -> f64 {
        let qor = self.qor(aig);
        qor.delay_ps + self.area_weight * qor.area_um2
    }

    fn name(&self) -> &str {
        "techmap-delay"
    }
}

/// Runtime-prioritized cost: predicted delay from structural features.
#[derive(Debug, Clone)]
pub struct LearnedCost {
    /// The trained regression model.
    pub model: RidgeModel,
}

impl LearnedCost {
    /// Wraps a trained model.
    pub fn new(model: RidgeModel) -> Self {
        LearnedCost { model }
    }

    /// Trains a model from labelled circuits: each sample is a circuit plus
    /// its measured post-mapping delay.
    pub fn train(samples: &[(Aig, f64)], lambda: f64) -> Self {
        let features: Vec<Vec<f64>> = samples
            .iter()
            .map(|(aig, _)| CircuitFeatures::extract(aig).values().to_vec())
            .collect();
        let targets: Vec<f64> = samples.iter().map(|(_, delay)| *delay).collect();
        LearnedCost {
            model: RidgeModel::fit(&features, &targets, lambda),
        }
    }
}

impl CostEvaluator for LearnedCost {
    fn evaluate(&self, aig: &Aig) -> f64 {
        self.model.predict(CircuitFeatures::extract(aig).values())
    }

    fn name(&self) -> &str {
        "learned-delay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use techmap::library::asap7_like;

    fn chain(width: usize) -> Aig {
        let mut aig = Aig::new(format!("chain{width}"));
        let inputs = aig.add_inputs("x", width);
        let mut acc = inputs[0];
        for &lit in &inputs[1..] {
            acc = aig.and(acc, lit);
        }
        aig.add_output(acc, "f");
        aig
    }

    fn adder(width: usize) -> Aig {
        let mut aig = Aig::new(format!("adder{width}"));
        let a: Vec<_> = (0..width).map(|i| aig.add_input(format!("a{i}"))).collect();
        let b: Vec<_> = (0..width).map(|i| aig.add_input(format!("b{i}"))).collect();
        let mut carry = aig::Lit::FALSE;
        for i in 0..width {
            let axb = aig.xor(a[i], b[i]);
            let s = aig.xor(axb, carry);
            carry = aig.maj3(a[i], b[i], carry);
            aig.add_output(s, format!("s{i}"));
        }
        aig.add_output(carry, "cout");
        aig
    }

    #[test]
    fn techmap_cost_orders_by_depth() {
        let evaluator = TechMapCost::new(asap7_like());
        let shallow = evaluator.evaluate(&chain(4));
        let deep = evaluator.evaluate(&chain(32));
        assert!(deep > shallow);
        assert_eq!(evaluator.name(), "techmap-delay");
    }

    #[test]
    fn learned_cost_tracks_techmap_on_training_family() {
        // Train on adders of several widths labelled with the real mapper and
        // check the prediction ranks an unseen width correctly.
        let mapper = TechMapCost::new(asap7_like());
        let samples: Vec<(Aig, f64)> = [2usize, 3, 4, 6, 8, 10, 12]
            .iter()
            .map(|&w| {
                let circuit = adder(w);
                let delay = mapper.qor(&circuit).delay_ps;
                (circuit, delay)
            })
            .collect();
        let learned = LearnedCost::train(&samples, 1e-3);
        let small = learned.evaluate(&adder(5));
        let large = learned.evaluate(&adder(11));
        assert!(
            large > small,
            "learned model should rank deeper adders as slower"
        );
        assert_eq!(learned.name(), "learned-delay");
    }

    #[test]
    fn learned_cost_is_much_cheaper_than_mapping() {
        use std::time::Instant;
        let mapper = TechMapCost::new(asap7_like());
        let circuit = adder(16);
        let samples: Vec<(Aig, f64)> =
            vec![(adder(4), 100.0), (adder(8), 200.0), (adder(12), 300.0)];
        let learned = LearnedCost::train(&samples, 1e-3);
        let t0 = Instant::now();
        let _ = mapper.evaluate(&circuit);
        let mapping_time = t0.elapsed();
        let t1 = Instant::now();
        let _ = learned.evaluate(&circuit);
        let learned_time = t1.elapsed();
        assert!(
            learned_time < mapping_time,
            "{learned_time:?} vs {mapping_time:?}"
        );
    }
}
