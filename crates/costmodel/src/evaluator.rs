//! The [`CostEvaluator`] trait and its two implementations.

use crate::features::CircuitFeatures;
use crate::regression::RidgeModel;
use aig::Aig;
use techmap::library::CellLibrary;
use techmap::{cell::map_to_cells, MapOptions, Qor};

/// Evaluates the quality of an extracted circuit.
///
/// The simulated-annealing extractor in the `emorphic` crate is generic over
/// this trait; the paper's "quality-prioritized" and "runtime-prioritized"
/// modes correspond to [`TechMapCost`] and [`LearnedCost`] respectively.
pub trait CostEvaluator: Send + Sync {
    /// Returns a scalar cost (lower is better) for the candidate circuit.
    fn evaluate(&self, aig: &Aig) -> f64;

    /// Human-readable name of the evaluator (used in reports).
    fn name(&self) -> &str;
}

/// Quality-prioritized cost: full standard-cell mapping, cost = delay (ps)
/// plus a small area tie-breaker.
#[derive(Debug, Clone)]
pub struct TechMapCost {
    /// The cell library used for mapping.
    pub library: CellLibrary,
    /// Mapper options.
    pub options: MapOptions,
    /// Weight of area (µm²) added to the delay cost as a tie-breaker.
    pub area_weight: f64,
}

impl TechMapCost {
    /// Creates a delay-dominated cost with a mild area tie-breaker.
    pub fn new(library: CellLibrary) -> Self {
        TechMapCost {
            library,
            options: MapOptions::default(),
            area_weight: 0.01,
        }
    }

    /// Maps the circuit and returns the full QoR record (used for reporting).
    pub fn qor(&self, aig: &Aig) -> Qor {
        map_to_cells(aig, &self.library, &self.options).qor()
    }
}

impl CostEvaluator for TechMapCost {
    fn evaluate(&self, aig: &Aig) -> f64 {
        let qor = self.qor(aig);
        qor.delay_ps + self.area_weight * qor.area_um2
    }

    fn name(&self) -> &str {
        "techmap-delay"
    }
}

/// Timing-driven cost: full standard-cell mapping against a delay target.
///
/// The mapper runs its map → required-time → area-recovery loop at the
/// given target; the cost is the recovered area plus a heavy penalty per ps
/// of target violation, so candidates that meet timing are ranked by area
/// and candidates that miss it are ranked by how badly they miss.
#[derive(Debug, Clone)]
pub struct TimingCost {
    /// The cell library used for mapping.
    pub library: CellLibrary,
    /// Mapper options (the delay target is injected on top).
    pub options: MapOptions,
    /// Delay target in ps.
    pub delay_target_ps: f64,
    /// Cost added per ps of delay beyond the target.
    pub violation_weight: f64,
}

impl TimingCost {
    /// Creates a timing-driven cost with a strong violation penalty.
    pub fn new(library: CellLibrary, delay_target_ps: f64) -> Self {
        TimingCost {
            library,
            options: MapOptions {
                area_passes: 2,
                ..MapOptions::default()
            },
            delay_target_ps,
            violation_weight: 100.0,
        }
    }

    /// Maps the circuit at the target and returns the full QoR record.
    pub fn qor(&self, aig: &Aig) -> Qor {
        let options = MapOptions {
            delay_target_ps: Some(self.delay_target_ps),
            ..self.options.clone()
        };
        map_to_cells(aig, &self.library, &options).qor()
    }
}

impl CostEvaluator for TimingCost {
    fn evaluate(&self, aig: &Aig) -> f64 {
        let qor = self.qor(aig);
        let violation = (qor.delay_ps - self.delay_target_ps).max(0.0);
        qor.area_um2 + self.violation_weight * violation
    }

    fn name(&self) -> &str {
        "techmap-timing"
    }
}

/// Runtime-prioritized cost: predicted delay from structural features.
#[derive(Debug, Clone)]
pub struct LearnedCost {
    /// The trained regression model.
    pub model: RidgeModel,
}

impl LearnedCost {
    /// Wraps a trained model.
    pub fn new(model: RidgeModel) -> Self {
        LearnedCost { model }
    }

    /// Trains a model from labelled circuits: each sample is a circuit plus
    /// its measured post-mapping delay.
    pub fn train(samples: &[(Aig, f64)], lambda: f64) -> Self {
        let features: Vec<Vec<f64>> = samples
            .iter()
            .map(|(aig, _)| CircuitFeatures::extract(aig).values().to_vec())
            .collect();
        let targets: Vec<f64> = samples.iter().map(|(_, delay)| *delay).collect();
        LearnedCost {
            model: RidgeModel::fit(&features, &targets, lambda),
        }
    }
}

impl CostEvaluator for LearnedCost {
    fn evaluate(&self, aig: &Aig) -> f64 {
        self.model.predict(CircuitFeatures::extract(aig).values())
    }

    fn name(&self) -> &str {
        "learned-delay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use techmap::library::asap7_like;

    fn chain(width: usize) -> Aig {
        let mut aig = Aig::new(format!("chain{width}"));
        let inputs = aig.add_inputs("x", width);
        let mut acc = inputs[0];
        for &lit in &inputs[1..] {
            acc = aig.and(acc, lit);
        }
        aig.add_output(acc, "f");
        aig
    }

    fn adder(width: usize) -> Aig {
        let mut aig = Aig::new(format!("adder{width}"));
        let a: Vec<_> = (0..width).map(|i| aig.add_input(format!("a{i}"))).collect();
        let b: Vec<_> = (0..width).map(|i| aig.add_input(format!("b{i}"))).collect();
        let mut carry = aig::Lit::FALSE;
        for i in 0..width {
            let axb = aig.xor(a[i], b[i]);
            let s = aig.xor(axb, carry);
            carry = aig.maj3(a[i], b[i], carry);
            aig.add_output(s, format!("s{i}"));
        }
        aig.add_output(carry, "cout");
        aig
    }

    #[test]
    fn techmap_cost_orders_by_depth() {
        let evaluator = TechMapCost::new(asap7_like());
        let shallow = evaluator.evaluate(&chain(4));
        let deep = evaluator.evaluate(&chain(32));
        assert!(deep > shallow);
        assert_eq!(evaluator.name(), "techmap-delay");
    }

    #[test]
    fn timing_cost_penalizes_violations_and_ranks_by_area_when_met() {
        let lib = asap7_like();
        // A generous target both adders meet: cost degenerates to area, so
        // the wider adder costs more.
        let met = TimingCost::new(lib.clone(), 1e6);
        let small = met.evaluate(&adder(3));
        let large = met.evaluate(&adder(8));
        assert!(large > small);
        assert_eq!(met.name(), "techmap-timing");
        // An impossible target: the deep chain misses it by more than the
        // shallow one, and the violation term dominates the area term.
        let tight = TimingCost::new(lib, 1.0);
        let shallow = tight.evaluate(&chain(4));
        let deep = tight.evaluate(&chain(64));
        assert!(deep > shallow + tight.violation_weight);
    }

    #[test]
    fn timing_cost_qor_respects_loose_targets() {
        let lib = asap7_like();
        let circuit = adder(6);
        // The pure delay-optimal mapping (no recovery) is the reference: a
        // loose target may trade its slack for area but never busts the
        // target nor exceeds the delay-optimal area (keep-best recovery).
        let optimal = map_to_cells(
            &circuit,
            &lib,
            &MapOptions {
                area_passes: 0,
                ..MapOptions::default()
            },
        )
        .qor();
        let loose = TimingCost::new(lib, optimal.delay_ps * 2.0);
        let qor = loose.qor(&circuit);
        assert!(qor.delay_ps <= optimal.delay_ps * 2.0 + 1e-6);
        assert!(qor.area_um2 <= optimal.area_um2 + 1e-6);
    }

    #[test]
    fn learned_cost_tracks_techmap_on_training_family() {
        // Train on adders of several widths labelled with the real mapper and
        // check the prediction ranks an unseen width correctly.
        let mapper = TechMapCost::new(asap7_like());
        let samples: Vec<(Aig, f64)> = [2usize, 3, 4, 6, 8, 10, 12]
            .iter()
            .map(|&w| {
                let circuit = adder(w);
                let delay = mapper.qor(&circuit).delay_ps;
                (circuit, delay)
            })
            .collect();
        let learned = LearnedCost::train(&samples, 1e-3);
        let small = learned.evaluate(&adder(5));
        let large = learned.evaluate(&adder(11));
        assert!(
            large > small,
            "learned model should rank deeper adders as slower"
        );
        assert_eq!(learned.name(), "learned-delay");
    }

    #[test]
    fn learned_cost_is_much_cheaper_than_mapping() {
        use std::time::Instant;
        let mapper = TechMapCost::new(asap7_like());
        let circuit = adder(16);
        let samples: Vec<(Aig, f64)> =
            vec![(adder(4), 100.0), (adder(8), 200.0), (adder(12), 300.0)];
        let learned = LearnedCost::train(&samples, 1e-3);
        let t0 = Instant::now();
        let _ = mapper.evaluate(&circuit);
        let mapping_time = t0.elapsed();
        let t1 = Instant::now();
        let _ = learned.evaluate(&circuit);
        let learned_time = t1.elapsed();
        assert!(
            learned_time < mapping_time,
            "{learned_time:?} vs {mapping_time:?}"
        );
    }
}
