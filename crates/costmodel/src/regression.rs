//! Ridge regression on standardized features.
//!
//! The learned cost model is a linear map from [`crate::CircuitFeatures`] to a
//! predicted post-mapping delay. Training solves the regularized normal
//! equations `(XᵀX + λI) w = Xᵀy` by Gaussian elimination with partial
//! pivoting; features are standardized (zero mean, unit variance) first so a
//! single regularization strength works across heterogeneous feature scales.

use serde::{Deserialize, Serialize};

/// A trained ridge-regression model.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct RidgeModel {
    /// Per-feature means used for standardization.
    pub feature_means: Vec<f64>,
    /// Per-feature standard deviations used for standardization.
    pub feature_stds: Vec<f64>,
    /// Learned weights (one per feature).
    pub weights: Vec<f64>,
    /// Learned intercept.
    pub intercept: f64,
    /// Regularization strength used during training.
    pub lambda: f64,
}

impl RidgeModel {
    /// Fits a model to `(samples, targets)` with regularization `lambda`.
    ///
    /// # Panics
    /// Panics if the sample matrix is empty, ragged, or the target length
    /// does not match.
    pub fn fit(samples: &[Vec<f64>], targets: &[f64], lambda: f64) -> Self {
        assert!(
            !samples.is_empty(),
            "at least one training sample is required"
        );
        assert_eq!(
            samples.len(),
            targets.len(),
            "one target per sample required"
        );
        let dim = samples[0].len();
        assert!(
            samples.iter().all(|s| s.len() == dim),
            "ragged sample matrix"
        );

        // Standardize features.
        let n = samples.len() as f64;
        let mut means = vec![0.0; dim];
        for sample in samples {
            for (m, v) in means.iter_mut().zip(sample) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut stds = vec![0.0; dim];
        for sample in samples {
            for ((s, v), m) in stds.iter_mut().zip(sample).zip(&means) {
                *s += (v - m).powi(2);
            }
        }
        for s in &mut stds {
            *s = (*s / n).sqrt();
            if *s < 1e-12 {
                *s = 1.0; // constant feature: leave it centered at zero
            }
        }
        let standardized: Vec<Vec<f64>> = samples
            .iter()
            .map(|s| {
                s.iter()
                    .zip(&means)
                    .zip(&stds)
                    .map(|((v, m), sd)| (v - m) / sd)
                    .collect()
            })
            .collect();
        let target_mean = targets.iter().sum::<f64>() / n;
        let centered_targets: Vec<f64> = targets.iter().map(|t| t - target_mean).collect();

        // Normal equations: A = XᵀX + λI, b = Xᵀy.
        let mut a = vec![vec![0.0f64; dim]; dim];
        let mut b = vec![0.0f64; dim];
        for (sample, &target) in standardized.iter().zip(&centered_targets) {
            for i in 0..dim {
                b[i] += sample[i] * target;
                for j in 0..dim {
                    a[i][j] += sample[i] * sample[j];
                }
            }
        }
        for (i, row) in a.iter_mut().enumerate() {
            row[i] += lambda;
        }
        let weights = solve_linear_system(a, b);

        RidgeModel {
            feature_means: means,
            feature_stds: stds,
            weights,
            intercept: target_mean,
            lambda,
        }
    }

    /// Predicts the target for one feature vector.
    ///
    /// # Panics
    /// Panics if the feature dimension does not match the trained model.
    pub fn predict(&self, features: &[f64]) -> f64 {
        assert_eq!(
            features.len(),
            self.weights.len(),
            "feature dimension mismatch"
        );
        let mut out = self.intercept;
        for ((v, m), (sd, w)) in features
            .iter()
            .zip(&self.feature_means)
            .zip(self.feature_stds.iter().zip(&self.weights))
        {
            out += (v - m) / sd * w;
        }
        out
    }

    /// Serializes the model to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self)
            .unwrap_or_else(|_| unreachable!("model serialization cannot fail"))
    }

    /// Loads a model from JSON.
    ///
    /// # Errors
    /// Returns the underlying serde error message.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| e.to_string())
    }
}

/// Solves `A x = b` by Gaussian elimination with partial pivoting.
// Index loops express the row/column arithmetic directly; iterator forms
// would need split_at_mut around the aliasing pivot row.
#[allow(clippy::needless_range_loop)]
fn solve_linear_system(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Vec<f64> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap_or_else(|| unreachable!("non-empty range"));
        a.swap(col, pivot);
        b.swap(col, pivot);
        let diag = a[col][col];
        if diag.abs() < 1e-12 {
            continue; // singular direction: leave the weight at zero
        }
        for row in (col + 1)..n {
            let factor = a[row][col] / diag;
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut sum = b[col];
        for k in (col + 1)..n {
            sum -= a[col][k] * x[k];
        }
        x[col] = if a[col][col].abs() < 1e-12 {
            0.0
        } else {
            sum / a[col][col]
        };
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_linear_relationship() {
        // y = 3*x0 - 2*x1 + 5
        let samples: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![i as f64, (i * 7 % 13) as f64])
            .collect();
        let targets: Vec<f64> = samples
            .iter()
            .map(|s| 3.0 * s[0] - 2.0 * s[1] + 5.0)
            .collect();
        let model = RidgeModel::fit(&samples, &targets, 1e-9);
        for (sample, target) in samples.iter().zip(&targets) {
            assert!((model.predict(sample) - target).abs() < 1e-4);
        }
        // Extrapolation stays close for a noiseless linear target.
        assert!((model.predict(&[100.0, 4.0]) - (300.0 - 8.0 + 5.0)).abs() < 1e-2);
    }

    #[test]
    fn handles_constant_features() {
        let samples: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, 42.0]).collect();
        let targets: Vec<f64> = samples.iter().map(|s| 2.0 * s[0] + 1.0).collect();
        let model = RidgeModel::fit(&samples, &targets, 1e-6);
        assert!((model.predict(&[10.0, 42.0]) - 21.0).abs() < 1e-4);
    }

    #[test]
    fn regularization_shrinks_weights() {
        let samples: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let targets: Vec<f64> = samples.iter().map(|s| 10.0 * s[0]).collect();
        let weak = RidgeModel::fit(&samples, &targets, 1e-6);
        let strong = RidgeModel::fit(&samples, &targets, 1e6);
        assert!(strong.weights[0].abs() < weak.weights[0].abs());
    }

    #[test]
    fn json_roundtrip() {
        let samples: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, (i * i) as f64]).collect();
        let targets: Vec<f64> = samples.iter().map(|s| s[0] + s[1]).collect();
        let model = RidgeModel::fit(&samples, &targets, 0.1);
        let back = RidgeModel::from_json(&model.to_json()).unwrap();
        assert_eq!(model, back);
        assert!(RidgeModel::from_json("{bad").is_err());
    }

    #[test]
    #[should_panic(expected = "one target per sample")]
    fn mismatched_targets_panic() {
        let _ = RidgeModel::fit(&[vec![1.0]], &[1.0, 2.0], 0.1);
    }
}
