//! Dual cost models for E-morphic's extraction loop.
//!
//! The paper evaluates extracted circuits in two modes (Section III-C):
//!
//! * **Quality-prioritized** — run the real technology mapper and use the
//!   post-mapping delay as the cost ([`TechMapCost`]). Accurate but slow.
//! * **Runtime-prioritized** — use a learned model that predicts the
//!   post-mapping delay from cheap structural features ([`LearnedCost`]).
//!   The paper uses the HOGA graph neural network; we reproduce its role
//!   with graph feature extraction ([`features`]) plus ridge regression
//!   ([`regression`]), trained on structural variants labelled by the real
//!   mapper and evaluated with the same metrics the paper reports
//!   (MAPE and Kendall's τ, [`metrics`]).
//!
//! Both models implement the [`CostEvaluator`] trait that the simulated
//! annealing extractor in the `emorphic` crate consumes.

#![warn(missing_docs)]

mod evaluator;
pub mod features;
pub mod metrics;
pub mod regression;

pub use evaluator::{CostEvaluator, LearnedCost, TechMapCost, TimingCost};
pub use features::CircuitFeatures;
pub use regression::RidgeModel;
