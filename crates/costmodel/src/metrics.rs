//! Prediction-quality metrics: MAPE and Kendall's τ.
//!
//! Section IV-D of the paper reports the learned delay predictor's Mean
//! Absolute Percentage Error (25.2 %) and Kendall's τ rank correlation
//! (0.62); the benchmark harness reproduces both numbers with these
//! functions.

/// Mean absolute percentage error between predictions and ground truth, in
/// percent. Entries with a zero ground-truth value are skipped.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn mape(predictions: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(predictions.len(), truth.len(), "length mismatch");
    let mut total = 0.0;
    let mut count = 0usize;
    for (p, t) in predictions.iter().zip(truth) {
        if t.abs() > 1e-12 {
            total += ((p - t) / t).abs();
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64 * 100.0
    }
}

/// Kendall's τ-a rank correlation between predictions and ground truth.
///
/// Returns a value in `[-1, 1]`; 1 means the prediction ranks candidates in
/// exactly the same order as the ground truth.
///
/// # Panics
/// Panics if the slices have different lengths or fewer than two entries.
pub fn kendall_tau(predictions: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(predictions.len(), truth.len(), "length mismatch");
    let n = predictions.len();
    assert!(n >= 2, "Kendall's tau requires at least two samples");
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let dp = predictions[i] - predictions[j];
            let dt = truth[i] - truth[j];
            let product = dp * dt;
            if product > 0.0 {
                concordant += 1;
            } else if product < 0.0 {
                discordant += 1;
            }
        }
    }
    let pairs = (n * (n - 1) / 2) as f64;
    (concordant - discordant) as f64 / pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mape_of_perfect_prediction_is_zero() {
        let truth = [10.0, 20.0, 30.0];
        assert_eq!(mape(&truth, &truth), 0.0);
    }

    #[test]
    fn mape_of_constant_offset() {
        // +10% everywhere.
        let truth = [100.0, 200.0, 400.0];
        let pred = [110.0, 220.0, 440.0];
        assert!((mape(&pred, &truth) - 10.0).abs() < 1e-9);
        // Zero-truth entries are skipped, not divided by.
        assert!((mape(&[5.0, 110.0], &[0.0, 100.0]) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn kendall_tau_extremes() {
        let truth = [1.0, 2.0, 3.0, 4.0];
        let same = [10.0, 20.0, 30.0, 40.0];
        let reversed = [40.0, 30.0, 20.0, 10.0];
        assert!((kendall_tau(&same, &truth) - 1.0).abs() < 1e-12);
        assert!((kendall_tau(&reversed, &truth) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_tau_partial_agreement() {
        let truth = [1.0, 2.0, 3.0];
        let pred = [1.0, 3.0, 2.0];
        // Pairs: (1,2) concordant, (1,3) concordant, (2,3) discordant: (2-1)/3.
        assert!((kendall_tau(&pred, &truth) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = mape(&[1.0], &[1.0, 2.0]);
    }
}
