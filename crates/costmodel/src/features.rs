//! Structural feature extraction from AIGs.
//!
//! The learned cost model predicts post-mapping delay from cheap structural
//! features: size, depth, fanout statistics, level-profile statistics and
//! edge-polarity counts. This mirrors the inputs the paper's GNN consumes
//! (node type, topological order, connectivity) collapsed into a fixed-size
//! vector so a linear model can be trained without an ML framework.

use aig::{Aig, AigNode};

/// A fixed-length feature vector describing an AIG's structure.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitFeatures {
    values: Vec<f64>,
}

/// Names of the extracted features, in order.
pub const FEATURE_NAMES: &[&str] = &[
    "num_ands",
    "num_inputs",
    "num_outputs",
    "depth",
    "log_num_ands",
    "ands_per_level",
    "avg_fanout",
    "max_fanout",
    "fanout_variance",
    "complemented_edge_ratio",
    "both_complemented_ratio",
    "level_mean",
    "level_variance",
    "critical_width_ratio",
    "output_depth_mean",
    "and_per_input",
];

impl CircuitFeatures {
    /// Number of features in a vector.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if the vector is empty (never the case in practice).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The raw feature values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Extracts features from a network.
    pub fn extract(aig: &Aig) -> Self {
        let num_ands = aig.num_ands() as f64;
        let num_inputs = aig.num_inputs() as f64;
        let num_outputs = aig.num_outputs() as f64;
        let levels = aig.levels();
        let depth = aig.depth() as f64;
        let fanouts = aig.fanout_counts();

        // Fanout statistics over driven nodes (inputs + ANDs).
        let fanout_values: Vec<f64> = aig
            .node_ids()
            .filter(|id| !aig.node(*id).is_const())
            .map(|id| fanouts[id.index()] as f64)
            .collect();
        let avg_fanout = mean(&fanout_values);
        let max_fanout = fanout_values.iter().copied().fold(0.0, f64::max);
        let fanout_variance = variance(&fanout_values, avg_fanout);

        // Edge polarity statistics.
        let mut complemented_edges = 0usize;
        let mut both_complemented = 0usize;
        let mut total_edges = 0usize;
        for id in aig.and_ids() {
            let (f0, f1) = aig.fanins(id);
            total_edges += 2;
            complemented_edges +=
                usize::from(f0.is_complemented()) + usize::from(f1.is_complemented());
            both_complemented += usize::from(f0.is_complemented() && f1.is_complemented());
        }
        let comp_ratio = ratio(complemented_edges, total_edges);
        let both_ratio = ratio(both_complemented, total_edges / 2);

        // Level-profile statistics over AND nodes.
        let and_levels: Vec<f64> = aig.and_ids().map(|id| levels[id.index()] as f64).collect();
        let level_mean = mean(&and_levels);
        let level_variance = variance(&and_levels, level_mean);
        // Width of the most populated level relative to the size.
        let mut per_level = vec![0usize; depth as usize + 1];
        for id in aig.and_ids() {
            per_level[levels[id.index()] as usize] += 1;
        }
        let max_width = per_level.iter().copied().max().unwrap_or(0) as f64;
        let critical_width_ratio = if num_ands > 0.0 {
            max_width / num_ands
        } else {
            0.0
        };

        // Output depth statistics.
        let output_depths: Vec<f64> = aig
            .outputs()
            .iter()
            .map(|po| match aig.node(po.node()) {
                AigNode::Const => 0.0,
                _ => levels[po.node().index()] as f64,
            })
            .collect();
        let output_depth_mean = mean(&output_depths);

        let values = vec![
            num_ands,
            num_inputs,
            num_outputs,
            depth,
            (num_ands + 1.0).ln(),
            if depth > 0.0 {
                num_ands / depth
            } else {
                num_ands
            },
            avg_fanout,
            max_fanout,
            fanout_variance,
            comp_ratio,
            both_ratio,
            level_mean,
            level_variance,
            critical_width_ratio,
            output_depth_mean,
            if num_inputs > 0.0 {
                num_ands / num_inputs
            } else {
                0.0
            },
        ];
        debug_assert_eq!(values.len(), FEATURE_NAMES.len());
        CircuitFeatures { values }
    }
}

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

fn variance(values: &[f64], mean: f64) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64
    }
}

fn ratio(a: usize, b: usize) -> f64 {
    if b == 0 {
        0.0
    } else {
        a as f64 / b as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(depth_chain: usize) -> Aig {
        let mut aig = Aig::new("s");
        let inputs = aig.add_inputs("x", depth_chain + 1);
        let mut acc = inputs[0];
        for &lit in &inputs[1..] {
            acc = aig.and(acc, lit);
        }
        aig.add_output(acc, "f");
        aig
    }

    #[test]
    fn feature_vector_has_documented_length() {
        let features = CircuitFeatures::extract(&sample(5));
        assert_eq!(features.len(), FEATURE_NAMES.len());
        assert!(!features.is_empty());
        assert!(features.values().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn depth_and_size_features_reflect_structure() {
        let shallow = CircuitFeatures::extract(&sample(3));
        let deep = CircuitFeatures::extract(&sample(12));
        // Feature 0 is the AND count, feature 3 is the depth.
        assert!(deep.values()[0] > shallow.values()[0]);
        assert!(deep.values()[3] > shallow.values()[3]);
    }

    #[test]
    fn polarity_features_distinguish_or_from_and() {
        let mut and_net = Aig::new("and");
        let a = and_net.add_input("a");
        let b = and_net.add_input("b");
        let f = and_net.and(a, b);
        and_net.add_output(f, "f");
        let mut or_net = Aig::new("or");
        let a = or_net.add_input("a");
        let b = or_net.add_input("b");
        let f = or_net.or(a, b);
        or_net.add_output(f, "f");
        let f_and = CircuitFeatures::extract(&and_net);
        let f_or = CircuitFeatures::extract(&or_net);
        // complemented_edge_ratio (index 9) differs.
        assert!(f_or.values()[9] > f_and.values()[9]);
    }

    #[test]
    fn handles_trivial_networks() {
        let mut aig = Aig::new("t");
        let _a = aig.add_input("a");
        aig.add_output(aig::Lit::TRUE, "one");
        let features = CircuitFeatures::extract(&aig);
        assert!(features.values().iter().all(|v| v.is_finite()));
    }
}
