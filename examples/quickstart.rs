//! Quickstart: run the E-morphic flow on a small arithmetic circuit and
//! compare it with the conventional delay-oriented baseline.
//!
//! Run with: `cargo run --example quickstart --release`

use emorphic::flow::{baseline_flow, emorphic_flow, FlowConfig};

fn main() {
    // 1. Build (or load) a circuit. Here: a 12-bit ripple-carry adder from the
    //    benchmark generators; `aig::io::read_aiger` / `read_eqn` can load
    //    external circuits instead.
    let circuit = benchgen::adder(12).aig;
    println!(
        "input circuit: {} ({} inputs, {} outputs, {} AND nodes, depth {})",
        circuit.name(),
        circuit.num_inputs(),
        circuit.num_outputs(),
        circuit.num_ands(),
        circuit.depth()
    );

    // 2. Configure the flows. `FlowConfig::paper()` matches the paper's
    //    setting; `fast()` is a reduced configuration for quick runs.
    let config = FlowConfig::fast();

    // 3. The conventional delay-oriented baseline:
    //    (st; if -g -K 6 -C 8)(st; dch; map) repeated.
    let baseline = baseline_flow(&circuit, &config);
    println!("\nbaseline flow      : {}", baseline.qor);

    // 4. The E-morphic flow: the same rounds, with e-graph based structural
    //    exploration (rewriting + simulated-annealing extraction) inserted
    //    before the final mapping round.
    let emorphic = emorphic_flow(&circuit, &config);
    println!("E-morphic flow     : {}", emorphic.qor);
    println!(
        "e-graph after rewriting: {} e-nodes in {} e-classes",
        emorphic.egraph_nodes, emorphic.egraph_classes
    );
    println!("equivalence checked: {}", emorphic.verified);

    // 5. Compare.
    let improvement = emorphic.qor.improvement_over(&baseline.qor);
    println!(
        "\nimprovement vs baseline: area {:+.1}%, delay {:+.1}%, levels {:+.1}%",
        improvement.area_pct, improvement.delay_pct, improvement.level_pct
    );
    let (conventional, conversion, extraction, verification) = emorphic.breakdown.percentages();
    println!(
        "runtime breakdown: {conventional:.0}% conventional flow, {conversion:.0}% conversion, {extraction:.0}% SA extraction, {verification:.0}% CEC"
    );
}
