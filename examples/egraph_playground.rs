//! The e-graph engine on its own: build an e-graph from Boolean expressions,
//! apply the Table I rewrite rules, inspect the equivalence classes, extract
//! with different cost functions, and dump the Fig. 7 intermediate DSL.
//!
//! Run with: `cargo run --example egraph_playground --release`

// Examples abort on broken invariants like test code does; the workspace
// deny on unwrap/expect/panic is relaxed here.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use egraph::{AstDepth, AstSize, EGraph, Extractor, RecExpr, Runner, StopReason};
use emorphic::dsl::DslDocument;
use emorphic::lang::BoolLang;
use emorphic::{aig_to_egraph, all_rules, table1_rules};

fn main() {
    // 1. Terms can be written directly as s-expressions over the Boolean
    //    language: x<i> are primary inputs.
    let distributed: RecExpr<BoolLang> = "(| (& x0 x1) (& x0 x2))".parse().unwrap();
    let factored: RecExpr<BoolLang> = "(& x0 (| x1 x2))".parse().unwrap();

    let mut egraph: EGraph<BoolLang> = EGraph::new();
    let id_distributed = egraph.add_expr(&distributed);
    let id_factored = egraph.add_expr(&factored);
    egraph.rebuild();
    println!(
        "before rewriting: {} classes, same class? {}",
        egraph.num_classes(),
        egraph.same(id_distributed, id_factored)
    );

    // 2. Equality saturation with the Table I rules proves them equivalent.
    let runner = Runner::with_egraph(egraph)
        .with_root(id_distributed)
        .with_iter_limit(8)
        .run(&table1_rules());
    println!(
        "after rewriting : {} classes / {} e-nodes, stop reason {:?}, equivalent? {}",
        runner.egraph.num_classes(),
        runner.egraph.total_nodes(),
        runner.stop_reason.clone().unwrap_or(StopReason::Saturated),
        runner.egraph.same(id_distributed, id_factored)
    );

    // 3. Extraction under different cost functions.
    let size_extractor = Extractor::new(&runner.egraph, AstSize);
    let (size_cost, smallest) = size_extractor.find_best(id_distributed);
    let depth_extractor = Extractor::new(&runner.egraph, AstDepth);
    let (depth_cost, shallowest) = depth_extractor.find_best(id_distributed);
    println!("smallest equivalent term  (size {size_cost}): {smallest}");
    println!("shallowest equivalent term (depth {depth_cost}): {shallowest}");

    // 4. The same machinery applied to a whole circuit via DAG-to-DAG
    //    conversion, plus the Fig. 7 intermediate DSL.
    let circuit = benchgen::adder(4).aig;
    let conversion = aig_to_egraph(&circuit);
    println!(
        "\nadder(4): {} AND nodes -> {} e-classes ({} e-nodes) in {:?}",
        circuit.num_ands(),
        conversion.egraph.num_classes(),
        conversion.egraph.total_nodes(),
        conversion.forward_time
    );
    let runner = Runner::with_egraph(conversion.egraph.clone())
        .with_iter_limit(3)
        .with_node_limit(20_000)
        .run(&all_rules());
    println!(
        "after 3 rewriting iterations: {} e-classes, {} e-nodes",
        runner.egraph.num_classes(),
        runner.egraph.total_nodes()
    );

    let doc = DslDocument::from_conversion(&conversion);
    let json = doc.to_json();
    println!(
        "\nintermediate DSL (Fig. 7): {} classes, {} bytes of JSON; first lines:",
        doc.egraph.num_classes(),
        json.len()
    );
    for line in json.lines().take(12) {
        println!("  {line}");
    }
}
