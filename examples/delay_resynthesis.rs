//! Timing-driven resynthesis of an arithmetic datapath, mirroring the
//! paper's motivating scenario (Fig. 1): conventional passes plateau, then
//! e-graph structural exploration — mapped over the *whole* recorded e-space
//! with the timing-driven choice mapper — recovers additional delay, and the
//! remaining slack is traded back for area by the recovery passes.
//!
//! The flow knobs do all the work here: `with_objective(Delay)` selects the
//! delay-first map → required-time → area-recovery loop,
//! `with_delay_target_ps` sets the timing constraint, and
//! `with_recovery_passes` controls how hard the mapper chases area at fixed
//! timing.
//!
//! Run with: `cargo run --example delay_resynthesis --release`

// Examples abort on broken invariants like test code does; the workspace
// deny on unwrap/expect/panic is relaxed here.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use costmodel::TechMapCost;
use emorphic::flow::{emorphic_map_flow, MapFlowConfig, MapObjective};
use logic_opt::{balance, rewrite};
use techmap::library::asap7_like;
use techmap::sop::sop_balance;
use techmap::MapOptions;

fn main() {
    // A multiplier has heavy reconvergence and benefits from restructuring.
    let circuit = benchgen::multiplier(8).aig;
    let mapper = TechMapCost::new(asap7_like());

    println!("== conventional technology-independent optimization ==");
    let mut current = circuit.clone();
    let mut last_delay = mapper.qor(&current).delay_ps;
    println!(
        "initial:          delay = {last_delay:.1} ps, {} ANDs",
        current.num_ands()
    );
    for (name, pass) in [
        ("balance", balance as fn(&aig::Aig) -> aig::Aig),
        ("rewrite", rewrite as fn(&aig::Aig) -> aig::Aig),
        ("sop-balance", |a: &aig::Aig| {
            sop_balance(a, &MapOptions::lut6())
        }),
        ("sop-balance", |a: &aig::Aig| {
            sop_balance(a, &MapOptions::lut6())
        }),
    ] {
        current = pass(&current);
        let delay = mapper.qor(&current).delay_ps;
        println!(
            "after {name:<12}: delay = {delay:.1} ps ({:+.1}%), {} ANDs",
            (delay - last_delay) / last_delay * 100.0,
            current.num_ands()
        );
        last_delay = delay;
    }

    println!("\n== E-morphic timing-driven choice mapping ==");
    // Phase 1 — find the achievable critical path: saturate, export the
    // whole e-space as a choice network, and map delay-first with no target
    // (the depth-optimal pass runs over every e-class member's cuts).
    let config = MapFlowConfig::fast()
        .with_objective(MapObjective::Delay)
        .with_recovery_passes(0);
    let optimal = emorphic_map_flow(&current, &config).expect("flow succeeds");
    println!(
        "delay-optimal map: delay = {:.1} ps, area = {:.2} um2, \
         {} e-classes, choices used: {}",
        optimal.qor.delay_ps,
        optimal.qor.area_um2,
        optimal.egraph_classes,
        if optimal.used_choices { "yes" } else { "no" }
    );

    // Phase 2 — the classic synthesis contract: meet a delay target 10%
    // looser than the best achievable, then recover as much area as the
    // slack allows (recovery can swap in a different e-class member's cut).
    let target = optimal.qor.delay_ps * 1.1;
    let relaxed = emorphic_map_flow(
        &current,
        &MapFlowConfig::fast()
            .with_objective(MapObjective::Delay)
            .with_delay_target_ps(target)
            .with_recovery_passes(3),
    )
    .expect("flow succeeds");
    println!(
        "target {target:.1} ps:  delay = {:.1} ps (slack {:+.1} ps), \
         area = {:.2} um2 ({:+.1}% vs delay-optimal)",
        relaxed.qor.delay_ps,
        relaxed.worst_slack_ps,
        relaxed.qor.area_um2,
        (relaxed.qor.area_um2 - optimal.qor.area_um2) / optimal.qor.area_um2 * 100.0,
    );

    // `verified` is only true when CEC *proved* equivalence; false covers
    // both a refuted netlist and an exhausted SAT budget, so don't report
    // it as anything stronger than "not proved".
    let verdict = if relaxed.verified && optimal.verified {
        "proved equivalent"
    } else {
        "NOT PROVED (CEC mismatch or SAT budget exhausted)"
    };
    println!(
        "\nresynthesized netlist: delay = {:.1} ps vs plateau {last_delay:.1} ps \
         ({:+.1}%), {verdict}",
        optimal.qor.delay_ps,
        (optimal.qor.delay_ps - last_delay) / last_delay * 100.0,
    );
}
