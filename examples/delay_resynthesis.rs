//! Delay-oriented resynthesis of an arithmetic datapath, mirroring the
//! paper's motivating scenario (Fig. 1): conventional passes plateau, then
//! e-graph structural exploration recovers additional delay.
//!
//! Run with: `cargo run --example delay_resynthesis --release`

use costmodel::TechMapCost;
use emorphic::extract::sa::{SaExtractor, SaOptions};
use emorphic::{aig_to_egraph, all_rules};
use logic_opt::{balance, rewrite};
use techmap::library::asap7_like;
use techmap::sop::sop_balance;
use techmap::MapOptions;

fn main() {
    // A multiplier has heavy reconvergence and benefits from restructuring.
    let circuit = benchgen::multiplier(8).aig;
    let mapper = TechMapCost::new(asap7_like());

    println!("== conventional technology-independent optimization ==");
    let mut current = circuit.clone();
    let mut last_delay = mapper.qor(&current).delay_ps;
    println!(
        "initial:          delay = {last_delay:.1} ps, {} ANDs",
        current.num_ands()
    );
    for (name, pass) in [
        ("balance", balance as fn(&aig::Aig) -> aig::Aig),
        ("rewrite", rewrite as fn(&aig::Aig) -> aig::Aig),
        ("sop-balance", |a: &aig::Aig| {
            sop_balance(a, &MapOptions::lut6())
        }),
        ("sop-balance", |a: &aig::Aig| {
            sop_balance(a, &MapOptions::lut6())
        }),
    ] {
        current = pass(&current);
        let delay = mapper.qor(&current).delay_ps;
        println!(
            "after {name:<12}: delay = {delay:.1} ps ({:+.1}%), {} ANDs",
            (delay - last_delay) / last_delay * 100.0,
            current.num_ands()
        );
        last_delay = delay;
    }

    println!("\n== E-morphic structural exploration ==");
    // Convert the optimized network to an e-graph, rewrite for a few
    // iterations, then extract with simulated annealing guided by the mapper.
    let conversion = aig_to_egraph(&current);
    let runner = egraph::Runner::with_egraph(conversion.egraph.clone())
        .with_iter_limit(4)
        .with_node_limit(60_000)
        .with_scheduler(egraph::Scheduler::Backoff {
            match_limit: 1_000,
            ban_length: 2,
        })
        .run(&all_rules());
    println!(
        "rewriting: {} iterations, {} e-nodes, {} e-classes (stop: {:?})",
        runner.iterations.len(),
        runner.egraph.total_nodes(),
        runner.egraph.num_classes(),
        runner.stop_reason.as_ref().unwrap()
    );
    let saturated = emorphic::convert::ConversionResult {
        roots: conversion
            .roots
            .iter()
            .map(|&r| runner.egraph.find(r))
            .collect(),
        egraph: runner.egraph,
        ..conversion
    };
    let extractor = SaExtractor::new(SaOptions {
        iterations: 3,
        threads: 2,
        ..SaOptions::default()
    });
    let result = extractor.extract(&saturated, &mapper);
    println!(
        "SA extraction: initial cost {:.1} -> best cost {:.1} across {} chains ({:.1}s)",
        result.initial_cost,
        result.best_cost,
        result.chains.len(),
        result.runtime.as_secs_f64()
    );

    // Verify and report the final mapped delay. Multiplier miters are hard
    // for plain CDCL, so bound the SAT effort: random simulation still
    // refutes any real bug, and an exhausted budget is reported as such
    // rather than grinding forever.
    let cec_options = cec::CecOptions {
        conflict_budget: Some(10_000),
        ..cec::CecOptions::default()
    };
    let check = cec::check_equivalence(&circuit, &result.best_aig, &cec_options);
    let verdict = match check {
        cec::CecResult::Equivalent => "proved equivalent",
        cec::CecResult::NotEquivalent(_) => "NOT EQUIVALENT",
        cec::CecResult::Unknown => "not refuted (SAT budget exhausted)",
    };
    let final_delay = mapper.qor(&result.best_aig).delay_ps;
    println!(
        "\nresynthesized circuit: delay = {final_delay:.1} ps vs plateau {last_delay:.1} ps \
         ({:+.1}%), {verdict}",
        (final_delay - last_delay) / last_delay * 100.0,
    );
}
