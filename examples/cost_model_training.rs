//! Train the learned (runtime-prioritized) cost model on structural variants
//! of a few circuits, evaluate its prediction quality, and use it to guide
//! simulated-annealing extraction.
//!
//! Run with: `cargo run --example cost_model_training --release`

use costmodel::metrics::{kendall_tau, mape};
use costmodel::{CircuitFeatures, CostEvaluator, LearnedCost, TechMapCost};
use emorphic::extract::sa::{SaExtractor, SaOptions};
use emorphic::{aig_to_egraph, all_rules};
use logic_opt::{balance, refactor, rewrite};
use techmap::library::asap7_like;

fn main() {
    let mapper = TechMapCost::new(asap7_like());

    // 1. Build a labelled training set: structural variants of small
    //    arithmetic circuits, labelled with the real post-mapping delay.
    let mut samples: Vec<(aig::Aig, f64)> = Vec::new();
    for circuit in [
        benchgen::adder(6).aig,
        benchgen::adder(10).aig,
        benchgen::multiplier(4).aig,
        benchgen::multiplier(6).aig,
        benchgen::square(5).aig,
    ] {
        for variant in [
            circuit.clone(),
            balance(&circuit),
            rewrite(&circuit),
            refactor(&balance(&circuit)),
        ] {
            let delay = mapper.qor(&variant).delay_ps;
            samples.push((variant, delay));
        }
    }
    println!(
        "training set: {} labelled structural samples",
        samples.len()
    );
    println!(
        "feature vector: {} features ({:?} ...)",
        costmodel::features::FEATURE_NAMES.len(),
        &costmodel::features::FEATURE_NAMES[..4]
    );

    // 2. Train / evaluate with a held-out split.
    let (train, test): (Vec<_>, Vec<_>) = samples
        .into_iter()
        .enumerate()
        .partition(|(i, _)| i % 4 != 3);
    let train: Vec<(aig::Aig, f64)> = train.into_iter().map(|(_, s)| s).collect();
    let test: Vec<(aig::Aig, f64)> = test.into_iter().map(|(_, s)| s).collect();
    let model = LearnedCost::train(&train, 1e-2);
    let predictions: Vec<f64> = test.iter().map(|(aig, _)| model.evaluate(aig)).collect();
    let truth: Vec<f64> = test.iter().map(|(_, d)| *d).collect();
    println!(
        "held-out quality: MAPE = {:.1}%, Kendall tau = {:.2} over {} samples",
        mape(&predictions, &truth),
        kendall_tau(&predictions, &truth),
        test.len()
    );

    // 3. Inspect the features of one circuit.
    let probe = benchgen::adder(8).aig;
    let features = CircuitFeatures::extract(&probe);
    println!(
        "\nadder(8) features: ands={:.0} depth={:.0} predicted delay={:.1} ps, mapped delay={:.1} ps",
        features.values()[0],
        features.values()[3],
        model.evaluate(&probe),
        mapper.qor(&probe).delay_ps
    );

    // 4. Use the learned model to guide SA extraction (runtime mode).
    let conversion = aig_to_egraph(&probe);
    let runner = egraph::Runner::with_egraph(conversion.egraph.clone())
        .with_iter_limit(3)
        .with_node_limit(30_000)
        .run(&all_rules());
    let saturated = emorphic::convert::ConversionResult {
        roots: conversion
            .roots
            .iter()
            .map(|&r| runner.egraph.find(r))
            .collect(),
        egraph: runner.egraph,
        ..conversion
    };
    let sa = SaExtractor::new(SaOptions {
        iterations: 3,
        threads: 2,
        ..SaOptions::default()
    });
    let guided = sa.extract(&saturated, &model);
    let true_delay = mapper.qor(&guided.best_aig).delay_ps;
    println!(
        "\nSA guided by the learned model: predicted cost {:.1}, true mapped delay {:.1} ps \
         (extraction took {:.2}s)",
        guided.best_cost,
        true_delay,
        guided.runtime.as_secs_f64()
    );
    let ok = cec::check_equivalence(&probe, &guided.best_aig, &cec::CecOptions::default());
    println!(
        "extracted circuit equivalent to the original: {}",
        ok.is_equivalent()
    );
}
