//! Combinational equivalence checking and SAT sweeping on their own:
//! verify that optimization preserved the function, and find internal
//! equivalences with the fraig-style sweeper.
//!
//! Run with: `cargo run --example equivalence_checking --release`

// Examples abort on broken invariants like test code does; the workspace
// deny on unwrap/expect/panic is relaxed here.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use aig::io::{read_eqn, write_aiger};
use cec::{check_equivalence, CecOptions, SatSweeper};
use logic_opt::OptScript;

fn main() {
    // Parse a circuit from the ABC-style equation format.
    let text = "\
INORDER = a b c d;
OUTORDER = f g;
t1 = a * b;
t2 = !c + d;
f = t1 * t2;
g = (a * b * d) + (t1 * !c);
";
    let golden = read_eqn(text).expect("valid equation file");
    println!(
        "parsed '{}' with {} inputs / {} outputs / {} AND nodes",
        golden.name(),
        golden.num_inputs(),
        golden.num_outputs(),
        golden.num_ands()
    );

    // Optimize it with a resyn-style script and check equivalence.
    let optimized = OptScript::resyn().run(&golden);
    println!(
        "after '{}': {} AND nodes (was {})",
        OptScript::resyn().to_command_string(),
        optimized.num_ands(),
        golden.num_ands()
    );
    let result = check_equivalence(&golden, &optimized, &CecOptions::default());
    println!(
        "cec: {}",
        if result.is_equivalent() {
            "equivalent"
        } else {
            "NOT equivalent"
        }
    );

    // Introduce a deliberate bug and show the counterexample.
    let mut buggy = aig::Aig::new("buggy");
    let a = buggy.add_input("a");
    let b = buggy.add_input("b");
    let c = buggy.add_input("c");
    let d = buggy.add_input("d");
    let t1 = buggy.and(a, b);
    let t2 = buggy.or(c, d); // bug: should be !c + d
    let f = buggy.and(t1, t2);
    let abd = buggy.and(t1, d);
    let t1nc = buggy.and(t1, c.not());
    let g = buggy.or(abd, t1nc);
    buggy.add_output(f, "f");
    buggy.add_output(g, "g");
    match check_equivalence(&golden, &buggy, &CecOptions::default()) {
        cec::CecResult::NotEquivalent(cex) => {
            println!(
                "buggy circuit differs on output {} under inputs {:?}",
                golden.output_name(cex.output),
                cex.inputs
            );
        }
        other => println!("unexpected verdict for the buggy circuit: {other:?}"),
    }

    // SAT sweeping merges functionally equivalent internal nodes.
    let sweeper = SatSweeper::default();
    let (reduced, stats) = sweeper.sweep(&golden);
    println!(
        "SAT sweeping: {} SAT calls, {} proved, {} merged nodes; {} -> {} ANDs",
        stats.sat_calls,
        stats.proved,
        stats.merged_nodes,
        golden.num_ands(),
        reduced.num_ands()
    );

    // Export the reduced network as ASCII AIGER.
    let aiger = write_aiger(&reduced);
    println!("\nAIGER export of the swept network:\n{aiger}");
}
