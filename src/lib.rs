//! Workspace facade for the E-morphic reproduction.
//!
//! This crate re-exports the workspace members under one roof so the
//! examples and integration tests can use a single dependency. Library users
//! should depend on the individual crates (`emorphic`, `aig`, `egraph`, ...)
//! directly.

pub use aig;
pub use benchgen;
pub use cec;
pub use costmodel;
pub use egraph;
pub use emorphic;
pub use logic_opt;
pub use sat;
pub use techmap;
